"""Declarative experiment scenarios.

A :class:`Scenario` bundles everything that defines one deployment of
the honey-account methodology — the :class:`ExperimentConfig`, the
:class:`LeakPlan`, and (through the config) the attacker-population
calibration — under a stable name.  Scenarios are immutable values:
they serialize to JSON, round-trip losslessly, and can be shipped to
worker processes, which is what keeps multi-seed sweeps deterministic
(:mod:`repro.api.runner` rebuilds each run from the serialized form).

Build variants fluently::

    scenario = (
        Scenario.builder()
        .named("scaled-down-pilot")
        .with_seed(7)
        .without_case_studies()
        .scale_accounts(0.5)
        .build()
    )
    run = scenario.run()

or start from a registry entry (:mod:`repro.api.registry`)::

    from repro.api import scenarios
    run = scenarios.get("paste_only").run(seed=2017)
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.attackers.personas import PersonaMix
from repro.attackers.population import PopulationConfig
from repro.core.experiment import Experiment, ExperimentConfig
from repro.core.groups import LeakPlan, OutletKind, paper_leak_plan
from repro.defenses import Defense, defenses_from_specs
from repro.errors import ConfigurationError
from repro.sim.clock import hours, minutes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.envelope import RunResult

#: Version tag embedded in serialized scenarios so future layout changes
#: can stay backward compatible.
SCENARIO_FORMAT_VERSION = 1


def _config_to_dict(config: ExperimentConfig) -> dict:
    data = {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(config)
        if f.name != "population"
    }
    data["emails_per_account"] = list(config.emails_per_account)
    data["population"] = dataclasses.asdict(config.population)
    return data


def _config_from_dict(data: dict) -> ExperimentConfig:
    try:
        payload = dict(data)
        payload["emails_per_account"] = tuple(
            payload.get("emails_per_account", (150, 250))
        )
        payload["population"] = PopulationConfig(
            **payload.get("population", {})
        )
        return ExperimentConfig(**payload)
    except TypeError as exc:
        raise ConfigurationError(f"bad config payload: {exc}") from exc


@dataclass(frozen=True)
class Scenario:
    """One named, self-contained experiment definition.

    Attributes:
        name: stable identifier (registry key or user-chosen).
        config: the full experiment configuration, including the
            attacker-population calibration.
        leak_plan: which accounts are leaked on which outlets.
        persona_mix: which attacker personas each outlet attracts
            (defaults to the paper's calibrated mix).
        shards: how many worker processes a run partitions the account
            population across (``1`` = ordinary serial execution; see
            :mod:`repro.shard`).  Sharded runs produce bit-identical
            ``analyze()`` output, so this is an execution knob, not an
            experimental variable.
        defenses: defender-side mechanisms active during the run
            (:mod:`repro.defenses`); accepts instances, spec dicts or
            bare registered names.  Empty (the default) is guaranteed
            bit-identical to runs predating the defense layer.
        description: one-line human summary shown by ``repro scenarios``.
    """

    name: str
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    leak_plan: LeakPlan = field(default_factory=paper_leak_plan)
    persona_mix: PersonaMix = field(default_factory=PersonaMix.paper)
    shards: int = 1
    defenses: tuple[Defense, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        # Normalise heterogeneous defense specs (names, dicts) into
        # frozen instances; unknown names fail loudly here.
        object.__setattr__(
            self, "defenses", defenses_from_specs(self.defenses)
        )

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def seed(self) -> int:
        return self.config.master_seed

    @property
    def account_count(self) -> int:
        return self.leak_plan.total_accounts

    @property
    def outlets(self) -> tuple[str, ...]:
        seen: list[str] = []
        for group in self.leak_plan.groups:
            if group.outlet.value not in seen:
                seen.append(group.outlet.value)
        return tuple(seen)

    def describe(self) -> str:
        """A short multi-line summary for CLI output."""
        lines = [f"{self.name}: {self.description or '(no description)'}"]
        lines.append(
            f"  accounts={self.account_count} "
            f"outlets={','.join(self.outlets)} "
            f"duration={self.config.duration_days:g}d"
        )
        lines.append(
            f"  seed={self.seed} "
            f"scan={self.config.scan_period / 60.0:g}min "
            f"scrape={self.config.scrape_period / 3600.0:g}h "
            f"case_studies={'on' if self.config.enable_case_studies else 'off'}"
        )
        if self.persona_mix == PersonaMix.paper():
            lines.append("  personas=paper mix")
        else:
            lines.append(f"  personas={self.persona_mix.summary()}")
        if self.shards != 1:
            lines.append(f"  shards={self.shards}")
        if self.defenses:
            names = ",".join(d.name for d in self.defenses)
            lines.append(f"  defenses={names}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # variants
    # ------------------------------------------------------------------
    def with_seed(self, seed: int) -> "Scenario":
        """The same scenario under a different master seed."""
        if seed == self.config.master_seed:
            return self
        return replace(self, config=replace(self.config, master_seed=seed))

    def with_name(self, name: str, description: str | None = None) -> "Scenario":
        if description is None:
            description = self.description
        return replace(self, name=name, description=description)

    def with_shards(self, shards: int) -> "Scenario":
        """The same scenario partitioned across ``shards`` workers."""
        if shards == self.shards:
            return self
        return replace(self, shards=shards)

    def with_defenses(self, *specs) -> "Scenario":
        """The same scenario under a different defense list.

        Accepts :class:`~repro.defenses.Defense` instances, spec dicts
        or bare registered names; call with no arguments to strip all
        defenses.  Unlike :meth:`with_shards` this *is* an experimental
        variable — sweeps content-address it.
        """
        return replace(self, defenses=defenses_from_specs(specs))

    @classmethod
    def builder(cls, base: "Scenario | None" = None) -> "ScenarioBuilder":
        """A fluent builder, starting from ``base`` or the paper default.

        Note this is a *classmethod*: ``Scenario.builder()`` starts from
        the paper-default scenario.  To derive from an existing instance
        use :meth:`to_builder` (calling ``instance.builder()`` would
        silently ignore the instance).
        """
        return ScenarioBuilder(base=base)

    def to_builder(self) -> "ScenarioBuilder":
        """A builder pre-loaded with this scenario's name/config/plan."""
        return ScenarioBuilder(base=self)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def build_experiment(self, seed: int | None = None) -> Experiment:
        """An (un-built) :class:`Experiment` configured by this scenario."""
        return Experiment.from_scenario(self, seed=seed)

    def run(self, seed: int | None = None) -> "RunResult":
        """Run once and return the :class:`repro.api.RunResult` envelope."""
        from repro.api.envelope import run_scenario

        return run_scenario(self, seed=seed)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "format_version": SCENARIO_FORMAT_VERSION,
            "name": self.name,
            "description": self.description,
            "config": _config_to_dict(self.config),
            "leak_plan": self.leak_plan.to_dict(),
            "persona_mix": self.persona_mix.to_dict(),
        }
        if self.shards != 1:
            data["shards"] = self.shards
        # Omitted when empty so defenses-off scenarios keep their
        # pre-defense canonical JSON (sweep content addresses, golden
        # fingerprints and stored results all stay valid).
        if self.defenses:
            data["defenses"] = [d.to_dict() for d in self.defenses]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        version = data.get("format_version", SCENARIO_FORMAT_VERSION)
        if version != SCENARIO_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported scenario format version {version!r}"
            )
        try:
            name = data["name"]
            config = _config_from_dict(data["config"])
            leak_plan = LeakPlan.from_dict(data["leak_plan"])
        except KeyError as exc:
            raise ConfigurationError(
                f"scenario payload missing {exc}"
            ) from exc
        mix_payload = data.get("persona_mix")
        persona_mix = (
            PersonaMix.from_dict(mix_payload)
            if mix_payload is not None
            else PersonaMix.paper()
        )
        return cls(
            name=name,
            config=config,
            leak_plan=leak_plan,
            persona_mix=persona_mix,
            shards=data.get("shards", 1),
            defenses=tuple(data.get("defenses", ())),
            description=data.get("description", ""),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "Scenario":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"bad scenario JSON: {exc}") from exc
        return cls.from_dict(data)


class ScenarioBuilder:
    """Fluent construction of scenario variants.

    Every ``with_*``/``scale_*`` method returns the builder itself, so
    overrides chain; :meth:`build` produces the immutable
    :class:`Scenario`.  Starts from the paper-default scenario unless a
    ``base`` is given.
    """

    def __init__(self, base: Scenario | None = None) -> None:
        if base is None:
            base = Scenario(
                name="custom",
                config=ExperimentConfig(),
                leak_plan=paper_leak_plan(),
                description="custom scenario",
            )
        self._name = base.name
        self._description = base.description
        self._config = base.config
        self._leak_plan = base.leak_plan
        self._persona_mix = base.persona_mix
        self._shards = base.shards
        self._defenses = base.defenses
        # A base whose horizon is already decoupled from its duration
        # was built that way on purpose; keep round-trips faithful.
        self._horizon_set_explicitly = (
            base.config.population.horizon_days != base.config.duration_days
        )

    # -- identity ------------------------------------------------------
    def named(self, name: str) -> "ScenarioBuilder":
        self._name = name
        return self

    def described(self, description: str) -> "ScenarioBuilder":
        self._description = description
        return self

    # -- config overrides ----------------------------------------------
    def with_config(self, **overrides) -> "ScenarioBuilder":
        """Override arbitrary :class:`ExperimentConfig` fields."""
        try:
            self._config = replace(self._config, **overrides)
        except TypeError as exc:
            raise ConfigurationError(f"unknown config field: {exc}") from exc
        return self

    def with_seed(self, seed: int) -> "ScenarioBuilder":
        return self.with_config(master_seed=seed)

    def with_duration_days(self, duration_days: float) -> "ScenarioBuilder":
        return self.with_config(duration_days=duration_days)

    def with_scan_period(self, seconds: float) -> "ScenarioBuilder":
        return self.with_config(scan_period=seconds)

    def with_scrape_period(self, seconds: float) -> "ScenarioBuilder":
        return self.with_config(scrape_period=seconds)

    def with_monitor_city(self, city_name: str) -> "ScenarioBuilder":
        return self.with_config(monitor_city_name=city_name)

    def with_emails_per_account(self, low: int, high: int) -> "ScenarioBuilder":
        return self.with_config(emails_per_account=(low, high))

    def with_case_studies(self, enabled: bool = True) -> "ScenarioBuilder":
        return self.with_config(enable_case_studies=enabled)

    def without_case_studies(self) -> "ScenarioBuilder":
        return self.with_case_studies(False)

    def fast_cadence(self) -> "ScenarioBuilder":
        """Apply the relaxed test/benchmark monitoring cadence."""
        return self.with_config(
            scan_period=hours(2),
            scrape_period=hours(3),
            emails_per_account=(60, 100),
        )

    def paper_cadence(self) -> "ScenarioBuilder":
        """Restore the paper's 10-minute scan / 2-hour scrape cadence."""
        return self.with_config(
            scan_period=minutes(10), scrape_period=hours(2)
        )

    def with_population(self, **overrides) -> "ScenarioBuilder":
        """Override :class:`PopulationConfig` calibration fields."""
        try:
            population = replace(self._config.population, **overrides)
        except TypeError as exc:
            raise ConfigurationError(
                f"unknown population field: {exc}"
            ) from exc
        if "horizon_days" in overrides:
            self._horizon_set_explicitly = True
        return self.with_config(population=population)

    # -- attacker personas ---------------------------------------------
    def with_personas(self, mix: "PersonaMix | dict") -> "ScenarioBuilder":
        """Replace the attacker persona mix.

        Accepts a :class:`~repro.attackers.personas.PersonaMix` or its
        ``to_dict`` payload; persona names are validated against the
        registry either way, so unknown names fail loudly here rather
        than at run time.
        """
        if isinstance(mix, dict):
            mix = PersonaMix.from_dict(mix)
        elif not isinstance(mix, PersonaMix):
            raise ConfigurationError(
                "with_personas expects a PersonaMix or its dict payload, "
                f"got {type(mix).__name__}"
            )
        self._persona_mix = mix.validate()
        return self

    def with_outlet_personas(
        self, outlet, rows
    ) -> "ScenarioBuilder":
        """Replace one outlet's persona table, keeping the others.

        ``rows`` is a sequence of ``(persona_or_combo, weight)`` pairs
        whose weights sum to 1.
        """
        self._persona_mix = self._persona_mix.with_outlet(
            outlet, rows
        ).validate()
        return self

    def only_persona(self, name: str) -> "ScenarioBuilder":
        """Every visitor on every outlet becomes ``name``."""
        self._persona_mix = PersonaMix.single(name).validate()
        return self

    # -- execution layout ----------------------------------------------
    def with_shards(self, shards: int) -> "ScenarioBuilder":
        """Partition runs across ``shards`` worker processes.

        Purely an execution knob: a sharded run's ``analyze()`` output
        is bit-identical to the serial run's (see :mod:`repro.shard`).
        """
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        self._shards = shards
        return self

    # -- defender side -------------------------------------------------
    def with_defenses(self, *specs) -> "ScenarioBuilder":
        """Replace the defense list (instances, spec dicts or names)."""
        self._defenses = defenses_from_specs(specs)
        return self

    def adding_defense(self, spec) -> "ScenarioBuilder":
        """Append one defense to the current list."""
        self._defenses = self._defenses + defenses_from_specs((spec,))
        return self

    def without_defenses(self) -> "ScenarioBuilder":
        return self.with_defenses()

    # -- leak plan overrides -------------------------------------------
    def with_leak_plan(self, plan: LeakPlan) -> "ScenarioBuilder":
        self._leak_plan = plan
        return self

    def only_outlets(self, *outlets: OutletKind | str) -> "ScenarioBuilder":
        self._leak_plan = self._leak_plan.filter_outlets(*outlets)
        return self

    def scale_accounts(self, factor: float) -> "ScenarioBuilder":
        """Multiply every leak group's size by ``factor``."""
        self._leak_plan = self._leak_plan.scaled(factor)
        return self

    def scaled_to(self, total_accounts: int) -> "ScenarioBuilder":
        """Resize the plan to exactly ``total_accounts`` accounts."""
        self._leak_plan = self._leak_plan.scaled(
            total_accounts=total_accounts
        )
        return self

    # -- terminal ------------------------------------------------------
    def build(self) -> Scenario:
        # Population horizon follows the experiment duration so scaled
        # or shortened variants keep attacker arrivals inside the
        # measurement window's tail behaviour — unless the caller
        # decoupled it with an explicit with_population(horizon_days=...).
        config = self._config
        if (
            not self._horizon_set_explicitly
            and config.population.horizon_days != config.duration_days
        ):
            config = replace(
                config,
                population=replace(
                    config.population, horizon_days=config.duration_days
                ),
            )
        return Scenario(
            name=self._name,
            config=config,
            leak_plan=self._leak_plan,
            persona_mix=self._persona_mix,
            shards=self._shards,
            defenses=self._defenses,
            description=self._description,
        )
