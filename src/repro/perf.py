"""Lightweight performance instrumentation for experiment runs.

Two tools, both stdlib-only and cheap enough to stay on by default:

* :class:`PhaseTimer` — named wall-clock phase accounting.  The
  experiment threads one through :meth:`~repro.core.experiment.
  Experiment.run`, so every :class:`~repro.api.RunResult` can report
  where a run spent its time (world build, provisioning, leaking, the
  simulation loop, dataset assembly) without re-running benchmarks.
* :func:`capture_profile` — a context manager wrapping a code region in
  :mod:`cProfile` and dumping ``pstats`` output to a file; the CLI's
  ``run --profile out.pstats`` uses it around the simulation loop.

``peak_rss_kb`` reports the process high-water mark the way the
benchmark scripts record it (``ru_maxrss``), so committed BENCH files
and ad-hoc measurements agree on units.
"""

from __future__ import annotations

import cProfile
import sys
import time
from contextlib import contextmanager
from typing import Iterator


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux; on macOS the kernel reports
    bytes, which this helper normalises.  Returns 0 on platforms
    without the ``resource`` module (Windows) — imported lazily so that
    ``import repro`` keeps working there.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        rss //= 1024
    return rss


class PhaseTimer:
    """Accumulates named wall-clock phases, in execution order.

    Phases may repeat; durations accumulate under the same name.  The
    timer is deliberately dumb — no nesting, no threads — because the
    run loop it instruments is single-threaded and flat.

    With ``track_rss=True`` the timer also snapshots the process RSS
    high-water mark (:func:`peak_rss_kb`) at the end of every phase.
    ``ru_maxrss`` is monotone, so the per-phase values read as "the
    high-water mark as of this phase's end": the first phase whose value
    jumps is the one that allocated.
    """

    def __init__(self, *, track_rss: bool = False) -> None:
        self._phases: dict[str, float] = {}
        self._track_rss = track_rss
        self._rss_kb: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._phases[name] = self._phases.get(name, 0.0) + elapsed
            if self._track_rss:
                self._rss_kb[name] = peak_rss_kb()

    @property
    def phases(self) -> dict[str, float]:
        """Name -> accumulated seconds, in first-execution order."""
        return dict(self._phases)

    @property
    def rss_kb(self) -> dict[str, int]:
        """Name -> RSS high-water (kB) at phase end; empty unless tracked."""
        return dict(self._rss_kb)

    @property
    def total_seconds(self) -> float:
        return sum(self._phases.values())

    def summary(self) -> dict[str, float]:
        """A JSON-ready copy of the phase table (rounded for humans)."""
        return {name: round(seconds, 6) for name, seconds in self._phases.items()}


@contextmanager
def capture_profile(path: str | None) -> Iterator[cProfile.Profile | None]:
    """Profile the enclosed block into ``path`` (pstats format).

    With ``path=None`` this is a no-op yielding ``None``, so call sites
    can wrap their hot region unconditionally::

        with capture_profile(profile_path):
            sim.run_until(end)
    """
    if path is None:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(str(path))
