"""Leak content formats.

Section 3.2: some groups leak bare username/password pairs; others add the
persona's location ("near London, UK" or Midwestern US cities) and date of
birth.  :class:`LeakContent` is the structured form; :func:`render_paste`
produces the text that would be pasted or posted.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.core.groups import LocationHint
from repro.corpus.identity import HoneyIdentity
from repro.webmail.account import Credentials


@dataclass(frozen=True)
class LeakContent:
    """What is actually disclosed about one account in a leak."""

    credentials: Credentials
    location_hint: LocationHint
    advertised_city: str | None
    advertised_country: str | None
    date_of_birth: date | None

    @property
    def has_location(self) -> bool:
        return self.advertised_city is not None


def leak_content_for(
    identity: HoneyIdentity,
    credentials: Credentials,
    location_hint: LocationHint,
) -> LeakContent:
    """Build the leak content for one honey account.

    Location and date of birth are included only for the with-location
    groups, drawn from the persona (whose home city was minted in the
    advertised region).
    """
    if location_hint is LocationHint.NONE or identity.home_city is None:
        return LeakContent(
            credentials=credentials,
            location_hint=location_hint,
            advertised_city=None,
            advertised_country=None,
            date_of_birth=None,
        )
    return LeakContent(
        credentials=credentials,
        location_hint=location_hint,
        advertised_city=identity.home_city.name,
        advertised_country=identity.home_city.country,
        date_of_birth=identity.date_of_birth,
    )


def render_paste(contents: list[LeakContent], *, teaser: bool = False) -> str:
    """Render leak contents as paste/forum text.

    With ``teaser=True`` the text mimics the underground-forum modus
    operandi the paper borrowed from Stone-Gross et al.: a free sample
    plus a promise of more accounts for a fee.
    """
    lines: list[str] = []
    if teaser:
        lines.append("fresh mail accounts — free sample below, 900+ more for sale")
        lines.append("")
    for content in contents:
        row = f"{content.credentials.address}:{content.credentials.password}"
        if content.has_location:
            row += f" | {content.advertised_city}, {content.advertised_country}"
            if content.date_of_birth is not None:
                row += f" | dob {content.date_of_birth.isoformat()}"
        lines.append(row)
    if teaser:
        lines.append("")
        lines.append("pm for the full dump")
    return "\n".join(lines)
