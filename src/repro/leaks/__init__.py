"""Credential-leak outlets: paste sites, underground forums, malware.

Each outlet model captures the properties the paper's measurement keys on:
how broad the audience is, how fast credentials propagate to attackers,
and what additional decoy information travels with the leak.  The malware
"outlet" is different in kind — credentials reach exactly one botmaster via
the sandbox infrastructure in :mod:`repro.malwaresim`.
"""

from repro.leaks.formats import LeakContent, render_paste
from repro.leaks.forums import ForumPost, ForumReply, UndergroundForum
from repro.leaks.malware import MalwareLeakChannel
from repro.leaks.outlet import LeakEvent, LeakLedger
from repro.leaks.pastesites import Paste, PasteSite

__all__ = [
    "ForumPost",
    "ForumReply",
    "LeakContent",
    "LeakEvent",
    "LeakLedger",
    "MalwareLeakChannel",
    "Paste",
    "PasteSite",
    "UndergroundForum",
    "render_paste",
]
