"""Underground-forum outlet model.

The paper leaked credentials as free "teasers" on four open underground
forums, mimicking the modus operandi documented by Stone-Gross et al.:
post a small sample to prove the goods are real, promise the full dump
for a fee, and ignore follow-ups.  The forum accounts received inquiry
replies the authors logged but never answered.

:class:`UndergroundForum` models registration, thread posting, replies
(inquiries), and an audience profile that the attacker population
samples arrival times from.  Forum audiences are smaller than paste-site
ones but contain a higher share of gold-diggers (Figure 2).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.errors import LeakError

_post_ids = itertools.count(1)


@dataclass(frozen=True)
class ForumProfile:
    """Audience parameters of one forum."""

    audience_rate: float
    propagation_median_days: float
    inquiry_rate: float  # expected inquiry replies per thread

    def __post_init__(self) -> None:
        if self.audience_rate < 0 or self.inquiry_rate < 0:
            raise LeakError("rates must be non-negative")
        if self.propagation_median_days <= 0:
            raise LeakError("propagation_median_days must be positive")


FORUM_PROFILES: dict[str, ForumProfile] = {
    "offensivecommunity.net": ForumProfile(
        audience_rate=1.7, propagation_median_days=9.0, inquiry_rate=1.2
    ),
    "bestblackhatforums.eu": ForumProfile(
        audience_rate=1.3, propagation_median_days=11.0, inquiry_rate=0.8
    ),
    "hackforums.net": ForumProfile(
        audience_rate=2.0, propagation_median_days=7.0, inquiry_rate=1.6
    ),
    "blackhatworld.com": ForumProfile(
        audience_rate=1.2, propagation_median_days=10.0, inquiry_rate=1.0
    ),
}

_INQUIRY_TEMPLATES: tuple[str, ...] = (
    "how many accounts total? interested in bulk",
    "are these aged? need inbox history",
    "pm me price for the full list",
    "sample works, what payment do you take?",
    "do you have more from the same dump?",
)


@dataclass(frozen=True)
class ForumReply:
    """An inquiry reply to a teaser thread (logged, never answered)."""

    author: str
    text: str
    posted_at: float


@dataclass
class ForumPost:
    """A teaser thread posted by the researchers' throwaway account."""

    post_id: str
    forum: str
    author: str
    text: str
    posted_at: float
    account_addresses: tuple[str, ...]
    replies: list[ForumReply] = field(default_factory=list)


@dataclass
class UndergroundForum:
    """An open underground forum (free registration, public threads)."""

    name: str
    profile: ForumProfile
    _members: set[str] = field(default_factory=set)
    _posts: list[ForumPost] = field(default_factory=list)

    @classmethod
    def from_name(cls, name: str) -> "UndergroundForum":
        try:
            return cls(name=name, profile=FORUM_PROFILES[name])
        except KeyError as exc:
            raise LeakError(f"unknown forum {name!r}") from exc

    def register(self, username: str) -> None:
        """Register a member (the paper used freshly created accounts)."""
        if username in self._members:
            raise LeakError(f"username {username!r} already registered")
        self._members.add(username)

    def is_member(self, username: str) -> bool:
        return username in self._members

    def post_teaser(
        self,
        author: str,
        text: str,
        account_addresses: tuple[str, ...],
        now: float,
    ) -> ForumPost:
        """Post a teaser thread.

        Raises:
            LeakError: if ``author`` is not registered.
        """
        if author not in self._members:
            raise LeakError(f"{author!r} must register before posting")
        post = ForumPost(
            post_id=f"{self.name}-{next(_post_ids)}",
            forum=self.name,
            author=author,
            text=text,
            posted_at=now,
            account_addresses=account_addresses,
        )
        self._posts.append(post)
        return post

    def generate_inquiries(
        self, post: ForumPost, rng: random.Random, horizon_days: float = 30.0
    ) -> list[ForumReply]:
        """Sample the inquiry replies a teaser thread attracts.

        The paper "logged the messages ... mostly inquiring about obtaining
        the full dataset, but we did not follow up to them."
        """
        count = _poisson(rng, self.profile.inquiry_rate)
        replies = []
        for _ in range(count):
            delay_days = rng.expovariate(1.0 / max(horizon_days / 4, 0.5))
            replies.append(
                ForumReply(
                    author=f"user{rng.randrange(1000, 99999)}",
                    text=rng.choice(_INQUIRY_TEMPLATES),
                    posted_at=post.posted_at + delay_days * 86400.0,
                )
            )
        post.replies.extend(replies)
        return replies

    @property
    def posts(self) -> tuple[ForumPost, ...]:
        return tuple(self._posts)


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler on a ``random.Random`` stream."""
    if mean <= 0:
        return 0
    import math

    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
