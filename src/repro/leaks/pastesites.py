"""Paste-site outlet model.

Paste sites are public and indexed: anyone scraping them sees a fresh
paste within hours.  The paper used two popular sites (pastebin.com,
pastie.org) and two Russian ones (p.for-us.nl, paste.org.ru); accounts
leaked on the Russian sites saw *no* accesses for over two months —
their audience is tiny — which is a visible feature of Figure 4.

:class:`PasteSite` models a site's audience reach and propagation delay;
the attacker population samples arrival times from these parameters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import LeakError

_paste_ids = itertools.count(1)


@dataclass(frozen=True)
class PasteSiteProfile:
    """Audience parameters of one paste site.

    Attributes:
        audience_rate: expected distinct interested visitors per paste —
            the Poisson mean of how many attackers will eventually try
            the credentials.
        propagation_median_days: median delay between paste publication
            and an interested visitor trying credentials.
        dormancy_days: minimum delay before *any* visitor arrives (the
            Russian-paste-site effect; 0 for popular sites).
    """

    audience_rate: float
    propagation_median_days: float
    dormancy_days: float = 0.0

    def __post_init__(self) -> None:
        if self.audience_rate < 0:
            raise LeakError("audience_rate must be non-negative")
        if self.propagation_median_days <= 0:
            raise LeakError("propagation_median_days must be positive")
        if self.dormancy_days < 0:
            raise LeakError("dormancy_days must be non-negative")


#: Profiles for the concrete sites the paper used.  Audience rates are
#: raw interested-visitor rates per account; observed unique accesses end
#: up lower because hijacks and suspensions cut observation short.
SITE_PROFILES: dict[str, PasteSiteProfile] = {
    "pastebin.com": PasteSiteProfile(
        audience_rate=4.4, propagation_median_days=7.0
    ),
    "pastie.org": PasteSiteProfile(
        audience_rate=3.2, propagation_median_days=9.0
    ),
    "p.for-us.nl": PasteSiteProfile(
        audience_rate=0.8, propagation_median_days=30.0, dormancy_days=62.0
    ),
    "paste.org.ru": PasteSiteProfile(
        audience_rate=0.7, propagation_median_days=35.0, dormancy_days=65.0
    ),
}


@dataclass(frozen=True)
class Paste:
    """One published paste."""

    paste_id: str
    site: str
    text: str
    published_at: float
    account_addresses: tuple[str, ...]


@dataclass
class PasteSite:
    """A paste site accepting anonymous pastes."""

    name: str
    profile: PasteSiteProfile
    _pastes: list[Paste] = field(default_factory=list)

    @classmethod
    def from_name(cls, name: str) -> "PasteSite":
        try:
            return cls(name=name, profile=SITE_PROFILES[name])
        except KeyError as exc:
            raise LeakError(f"unknown paste site {name!r}") from exc

    def publish(
        self, text: str, account_addresses: tuple[str, ...], now: float
    ) -> Paste:
        """Publish a paste; it becomes world-visible immediately."""
        paste = Paste(
            paste_id=f"{self.name}-{next(_paste_ids)}",
            site=self.name,
            text=text,
            published_at=now,
            account_addresses=account_addresses,
        )
        self._pastes.append(paste)
        return paste

    @property
    def pastes(self) -> tuple[Paste, ...]:
        return tuple(self._pastes)
