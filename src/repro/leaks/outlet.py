"""Common leak bookkeeping shared by all outlets."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.groups import GroupSpec, OutletKind
from repro.leaks.formats import LeakContent


@dataclass(frozen=True)
class LeakEvent:
    """One account's credentials becoming available on one venue."""

    content: LeakContent
    group: GroupSpec
    venue: str
    leak_time: float

    @property
    def account_address(self) -> str:
        return self.content.credentials.address

    @property
    def outlet(self) -> OutletKind:
        return self.group.outlet


@dataclass
class LeakLedger:
    """Registry of every leak event across all outlets."""

    _events: list[LeakEvent] = field(default_factory=list)

    def record(self, event: LeakEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> tuple[LeakEvent, ...]:
        return tuple(self._events)

    def events_for_outlet(self, outlet: OutletKind) -> tuple[LeakEvent, ...]:
        return tuple(e for e in self._events if e.outlet is outlet)

    def first_leak_time(self, account_address: str) -> float | None:
        """The first moment an account's credentials appeared anywhere."""
        times = [
            e.leak_time
            for e in self._events
            if e.account_address == account_address
        ]
        return min(times) if times else None

    def leaked_accounts(self) -> set[str]:
        return {e.account_address for e in self._events}
