"""Sharded scenario execution: partition accounts, run, merge.

The honey-account methodology is embarrassingly partitionable: each
account's leak, visits and telemetry are independent once the shared
build-time processes (leak venues, arrival draws, attacker profiles)
are replayed identically everywhere.  :func:`run_sharded` exploits
that:

1. **Partition** — accounts map to shards by a stable BLAKE2b hash of
   their address (:mod:`repro.core.sharding`); the case-study block is
   pinned to shard 0 because the scripted campaigns couple its
   accounts.
2. **Run** — every shard builds the *full* world and provisions the
   *full* account population (so every shared RNG stream advances
   draw-for-draw as in the serial run), but installs scan scripts,
   watches the scraper, schedules attacker visits and runs case
   studies only for the accounts it owns.  Shards execute as
   independent :class:`~repro.core.experiment.Experiment` runs in
   forked workers, reusing the process-pool approach of
   :class:`~repro.api.runner.BatchRunner`.
3. **Merge** — the per-shard columnar stores are merged back into one
   :class:`~repro.core.records.ObservedDataset`: strings re-interned
   into a fresh shared table and rows re-sorted into the exact global
   order the serial monitor would have appended them in (scrape-tick
   interleaving for accesses, scan-tick interleaving for
   notifications, watch order breaking ties).

The contract is the one PRs 2 and 4 established for the telemetry and
event-loop rewrites, now across process boundaries: *faster, but
bit-identical* — ``analyze()`` over the merged dataset equals the
serial run field for field, and :func:`dataset_mismatches` returns
nothing.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.api.envelope import RunResult, run_scenario
from repro.api.scenario import Scenario
from repro.core.experiment import Experiment
from repro.core.records import AccountProvenance, ObservedDataset
from repro.core.sharding import ShardSpec, shard_of, stable_hash64
from repro.errors import ConfigurationError, SupervisionError
from repro.faults.plan import fault_site
from repro.faults.supervise import supervise_iter

__all__ = [
    "ShardRun",
    "ShardSpec",
    "dataset_mismatches",
    "merge_shard_runs",
    "run_sharded",
    "shard_of",
    "stable_hash64",
]


@dataclass
class ShardRun:
    """Everything one shard worker sends back to the coordinator.

    Picklable: the dataset rides on the compact columnar pickle path,
    the live world stays in the worker.
    """

    spec: ShardSpec
    dataset: ObservedDataset
    events_executed: int
    blacklisted_ips: set[str]
    perf: dict[str, float]
    elapsed_seconds: float
    #: Full population in provision (= watch) order; identical across
    #: shards and the source of the merge interleaving order.
    all_addresses: tuple[str, ...]
    #: The subset this shard simulated and observed.
    owned_addresses: tuple[str, ...]
    #: Spill manifest when the worker ran under a telemetry budget and
    #: left its chunked columns on disk (``None`` otherwise).  The
    #: coordinator reattaches the on-disk chunks with
    #: :meth:`~repro.core.records.ObservedDataset.attach_spilled_stores`
    #: instead of the worker pickling the full stores back into RAM.
    spill_manifest: dict | None = None


def _execute_shard(task: tuple) -> ShardRun:
    """Run one shard of a serialized scenario.

    Module-level so process pools can pickle it; the in-process path
    calls it too, guaranteeing identical execution either way (the
    same property :class:`~repro.api.runner.BatchRunner` relies on).

    ``task`` is ``(scenario_json, index, count)`` plus an optional
    trailing :meth:`TelemetryBudget.to_dict` payload with the shard's
    spill directory already pinned by the coordinator.
    """
    scenario_json, index, count, *rest = task
    fault_site("shard.worker", shard=index, shards=count)
    budget = None
    if rest and rest[0] is not None:
        from repro.telemetry import TelemetryBudget

        budget = TelemetryBudget.from_dict(rest[0])
    scenario = Scenario.from_json(scenario_json)
    spec = ShardSpec(index=index, count=count)
    started = time.perf_counter()
    experiment = Experiment.from_scenario(
        scenario, shard=spec, telemetry_budget=budget
    )
    result = experiment.run()
    elapsed = time.perf_counter() - started
    dataset = result.dataset
    spill_manifest = None
    if budget is not None and any(
        store.spilled
        for store in (dataset.access_store, dataset.notification_store)
    ):
        # Leave the chunks where they are; ship only the manifest.  The
        # detached dataset pickles as empty stores plus metadata.
        spill_manifest = dataset.detach_spilled_stores()
    return ShardRun(
        spec=spec,
        dataset=dataset,
        events_executed=result.events_executed,
        blacklisted_ips=set(result.blacklisted_ips),
        perf=dict(result.perf),
        elapsed_seconds=elapsed,
        all_addresses=result.all_addresses,
        owned_addresses=result.owned_addresses,
        spill_manifest=spill_manifest,
    )


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------
def _access_ticks(
    timestamps: list[float],
    period: float,
    delimiters: list[bool],
) -> list[int]:
    """Scrape-tick indices at which one account's rows were ingested.

    Every *successful* scrape of an account logs in first (appending
    the scraper's own row to the activity page, stamped with the exact
    tick time) and then reads the page tail — so in page order, each
    ingestion batch ends with a scraper login row, and that row's
    timestamp names the batch's tick.  ``delimiters`` marks those rows
    (monitor-IP rows whose timestamp sits exactly on the tick grid); a
    right-to-left scan assigns every row the tick of the next delimiter
    at or after it.

    This recovers two cases a plain ``ceil(timestamp / period)`` gets
    wrong: the sandbox campaign's future-stamped login rows (written at
    world build, drained at the account's first scrape) and backlog
    drained after a lockout clears (a defender-forced reset re-syncs
    the scraper's credential mid-run, so rows recorded while the
    scraper was locked out are ingested at the first tick after the
    reset, not the first tick after their timestamps).
    """
    ticks = [0] * len(timestamps)
    next_tick: int | None = None
    for i in range(len(timestamps) - 1, -1, -1):
        if delimiters[i]:
            # Exact division: delimiter timestamps are tick times.
            next_tick = int(timestamps[i] / period)
            ticks[i] = next_tick
        elif next_tick is not None:
            ticks[i] = next_tick
        else:
            # No following scrape row (not produced by the monitor's
            # batch structure); fall back to the live-recording model.
            ticks[i] = math.ceil(timestamps[i] / period)
    return ticks


def _string_remaps(target_strings, shard_runs: list["ShardRun"]):
    """Per-shard id translation tables into the merged string table.

    Each shard's three stores share one interning table (the monitor
    wires them that way), so one pass over that table per shard
    re-interns every distinct string exactly once; column merging then
    copies raw ids through ``remap`` without materialising any row.
    Remaps are built in shard order, so the merged table's id
    assignment is deterministic.
    """
    intern = target_strings.intern
    remaps = []
    for run in shard_runs:
        table = run.dataset.access_store.strings
        remaps.append(
            [intern(table.lookup(i)) for i in range(len(table))]
        )
    return remaps


def _merge_columns(target, sources, order, remaps) -> None:
    """Fill ``target``'s columns with the globally ordered rows.

    ``order`` is the merged row order as ``(shard, row)`` pairs;
    ``remaps`` translates each shard's string ids into the target
    table.  Works column-at-a-time on the raw arrays — no row tuples,
    no per-value interning — which keeps the merge a small fraction of
    one shard's simulate phase even at hundreds of thousands of rows.

    Both sides may be out-of-core: spilled *sources* serve reads from
    mmap'd chunks (random access goes through a small per-file mmap
    cache), and a spilled *target* is filled one chunk-sized batch at a
    time, sealing each batch to disk before the next — so the merge
    never holds more than one target chunk of row data resident.  A
    resident target takes a single whole-``order`` batch, which is
    byte-for-byte the old behaviour.
    """
    batch = target.spill_chunk_rows if target.spilled else 0
    if not batch:
        batch = max(len(order), 1)
    shard_columns_by_field = {
        field.name: [source.column(field.name) for source in sources]
        for field in target.schema
    }
    for start in range(0, len(order), batch):
        window = order[start : start + batch]
        for field in target.schema:
            column = target.column(field.name)
            shard_columns = shard_columns_by_field[field.name]
            if field.kind == "intern":
                ids = [col.ids for col in shard_columns]
                column.ids.extend(
                    [remaps[s][ids[s][r]] for s, r in window]
                )
            elif field.kind == "opt_f64":
                data = [col.data for col in shard_columns]
                mask = [col.mask for col in shard_columns]
                column.data.extend([data[s][r] for s, r in window])
                column.mask.extend([mask[s][r] for s, r in window])
            else:  # f64, i64, obj — raw payloads copy through
                data = [col.data for col in shard_columns]
                column.data.extend([data[s][r] for s, r in window])
        if target.spilled:
            target._maybe_flush()


def merge_shard_runs(
    scenario: Scenario,
    shard_runs: list[ShardRun],
    *,
    telemetry_budget=None,
    spill_directory=None,
) -> tuple[ObservedDataset, dict]:
    """Merge per-shard datasets into one, in serial append order.

    Returns the merged dataset plus merge diagnostics (row counts and
    wall-clock).  Raises :class:`ConfigurationError` when the shards
    disagree about the population or overlap in ownership — either
    means the partition itself is broken.

    With a ``telemetry_budget``, the merged stores the budget plans as
    spilled are created out-of-core up front (chunks land under
    ``spill_directory``, default ``<budget spill dir>/merged``), so
    merging spilled shard chunks streams disk-to-disk instead of
    re-materialising every shard's rows in RAM.
    """
    started = time.perf_counter()
    if not shard_runs:
        raise ConfigurationError("cannot merge zero shard runs")
    shard_runs = sorted(shard_runs, key=lambda run: run.spec.index)
    reference = shard_runs[0].all_addresses
    for run in shard_runs[1:]:
        if run.all_addresses != reference:
            raise ConfigurationError(
                "shards disagree about the account population "
                f"(shard {run.spec.index} vs shard "
                f"{shard_runs[0].spec.index})"
            )
    watch_index = {address: i for i, address in enumerate(reference)}
    owner: dict[str, ShardRun] = {}
    for run in shard_runs:
        for address in run.owned_addresses:
            if address in owner:
                raise ConfigurationError(
                    f"account {address!r} owned by two shards"
                )
            owner[address] = run
    missing = [address for address in reference if address not in owner]
    if missing:
        raise ConfigurationError(
            f"{len(missing)} accounts owned by none of the given "
            f"shards (first: {missing[0]!r}) — a shard run is missing"
        )

    scrape_period = scenario.config.scrape_period
    merged = ObservedDataset()
    if telemetry_budget is not None:
        plan = telemetry_budget.plan(
            account_count=len(reference),
            duration_days=scenario.config.duration_days,
            scrape_period=scenario.config.scrape_period,
            scan_period=scenario.config.scan_period,
        )
        spill_stores = tuple(
            name
            for name in ("accesses", "notifications")
            if plan.get(name)
        )
        if spill_stores:
            if spill_directory is None:
                spill_directory = (
                    Path(telemetry_budget.resolve_spill_dir()) / "merged"
                )
            merged.configure_spill(
                Path(spill_directory),
                chunk_rows=telemetry_budget.chunk_rows,
                stores=spill_stores,
            )
    remaps = _string_remaps(merged.access_store.strings, shard_runs)

    # Access rows interleave at scrape ticks (a per-account property:
    # the running minimum in _access_ticks needs each account's page
    # order, and every account's rows live in exactly one shard, in
    # page order).  Sort keys carry (shard, row) so ties keep the
    # per-account order and the sort is fully deterministic.
    access_keys: list[tuple] = []
    for s, run in enumerate(shard_runs):
        store = run.dataset.access_store
        lookup = store.strings.lookup
        id_of = store.strings.id_of
        timestamps = store.timestamps
        ip_ids = store.ip_ids
        # Scraper login rows delimit ingestion batches: monitor-IP rows
        # stamped exactly on the tick grid.  (Sandbox rows also carry
        # monitor IPs but continuous build-time timestamps, so the grid
        # test excludes them.)
        monitor_ip_ids = {
            id_of(ip)
            for ip in run.dataset.monitor_ips
            if id_of(ip) is not None
        }
        rows_by_account: dict[int, list[int]] = {}
        for r, account_id in enumerate(store.account_ids):
            rows_by_account.setdefault(account_id, []).append(r)
        for account_id, row_ids in rows_by_account.items():
            index = watch_index[lookup(account_id)]
            ticks = _access_ticks(
                [timestamps[r] for r in row_ids],
                scrape_period,
                [
                    ip_ids[r] in monitor_ip_ids
                    and timestamps[r] > 0.0
                    and timestamps[r] % scrape_period == 0.0
                    for r in row_ids
                ],
            )
            access_keys.extend(
                (tick, index, s, r) for tick, r in zip(ticks, row_ids)
            )
    access_keys.sort()
    _merge_columns(
        merged.access_store,
        [run.dataset.access_store for run in shard_runs],
        [(s, r) for _, _, s, r in access_keys],
        remaps,
    )

    # Notifications and scrape failures carry their tick time directly
    # (scripts report at scan ticks, lockouts at scrape ticks); watch
    # order breaks same-tick ties exactly as the serial loops do.
    notification_keys: list[tuple] = []
    for s, run in enumerate(shard_runs):
        store = run.dataset.notification_store
        lookup = store.strings.lookup
        timestamps = store.timestamps
        notification_keys.extend(
            (timestamps[r], watch_index[lookup(account_id)], s, r)
            for r, account_id in enumerate(store.account_ids)
        )
    notification_keys.sort()
    _merge_columns(
        merged.notification_store,
        [run.dataset.notification_store for run in shard_runs],
        [(s, r) for _, _, s, r in notification_keys],
        remaps,
    )

    failure_keys: list[tuple] = []
    for s, run in enumerate(shard_runs):
        log = run.dataset.failure_log
        lookup = log.strings.lookup
        timestamps = log.column("timestamp").data
        failure_keys.extend(
            (timestamps[r], watch_index[lookup(address_id)], s, r)
            for r, address_id in enumerate(log.column("address").ids)
        )
    failure_keys.sort()
    _merge_columns(
        merged.failure_log,
        [run.dataset.failure_log for run in shard_runs],
        [(s, r) for _, _, s, r in failure_keys],
        remaps,
    )

    # Defense actions carry continuous per-account trigger times (the
    # planner jitters every check phase), so scheduled rows never tie
    # across accounts.  The one cross-account tie source is synchronous
    # ``prevented_login`` rows from attacker burst waves, where many
    # devices attempt at one shared arrival instant; serial execution
    # order there is device-creation order, i.e. ascending device id —
    # the ``detail`` column.  Within an account, same-time rows (check +
    # detect) keep their recorded sequence: equal details fall through
    # to (shard, row), which is shard-invariant because an account
    # lives in one shard, and a detect's detail ("", "false_positive")
    # never sorts before its check's "".
    defense_keys: list[tuple] = []
    for s, run in enumerate(shard_runs):
        store = run.dataset.defense_store
        lookup = store.strings.lookup
        timestamps = store.timestamps
        details = store.detail_ids
        defense_keys.extend(
            (
                timestamps[r],
                lookup(details[r]),
                watch_index[lookup(account_id)],
                s,
                r,
            )
            for r, account_id in enumerate(store.account_ids)
        )
    defense_keys.sort()
    _merge_columns(
        merged.defense_store,
        [run.dataset.defense_store for run in shard_runs],
        [(s, r) for *_, s, r in defense_keys],
        remaps,
    )

    # Account-keyed fields rebuild in watch order from the owner shard,
    # which is exactly the order the serial assembly walks accounts in.
    merged.monitor_city = shard_runs[0].dataset.monitor_city
    for run in shard_runs:
        merged.monitor_ips |= run.dataset.monitor_ips
    for address in reference:
        run = owner[address]
        provenance = run.dataset.provenance.get(address)
        if provenance is not None:
            merged.provenance[address] = AccountProvenance(
                address=address,
                group=provenance.group,
                leak_time=provenance.leak_time,
            )
        texts = run.dataset.all_email_texts.get(address)
        if texts is not None:
            merged.all_email_texts[address] = list(texts)
    blocked: dict[str, float] = {}
    for run in shard_runs:
        for address, blocked_at in run.dataset.blocked_accounts:
            blocked[address] = blocked_at
    merged.blocked_accounts = [
        (address, blocked[address])
        for address in reference
        if address in blocked
    ]
    for run in shard_runs:
        merged.ground_truth_personas.update(
            run.dataset.ground_truth_personas
        )

    diagnostics = {
        "access_rows": len(access_keys),
        "notification_rows": len(notification_keys),
        "failure_rows": len(failure_keys),
        "defense_rows": len(defense_keys),
        "merge_seconds": round(time.perf_counter() - started, 6),
    }
    return merged, diagnostics


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def run_sharded(
    scenario: Scenario,
    *,
    shards: int | None = None,
    jobs: int | None = None,
    seed: int | None = None,
    telemetry_budget=None,
    supervise: bool = True,
    shard_timeout: float | None = None,
    shard_retries: int = 1,
    heartbeat_interval: float = 0.2,
    stale_after: float | None = None,
) -> RunResult:
    """Run ``scenario`` across ``shards`` workers and merge the result.

    Args:
        shards: partition size; defaults to the scenario's ``shards``
            field.  ``1`` falls through to the ordinary serial
            :func:`~repro.api.envelope.run_scenario`.
        jobs: worker processes; defaults to ``min(shards, cpu_count)``.
            ``1`` runs the shards sequentially in this process — same
            result, no pool (useful for tests and debugging).
        seed: master-seed override, as in ``Scenario.run``.
        telemetry_budget: out-of-core telemetry policy applied to every
            worker *and* the merge.  One spill directory is resolved
            here and partitioned as ``shard-<i>/`` per worker plus
            ``merged/`` for the coordinator; workers ship chunk
            manifests back instead of pickled row data, and the merge
            streams shard chunks into merged chunks.
        supervise: run pooled workers under
            :func:`repro.faults.supervise.supervise_iter` — a crashed,
            hung, or timed-out shard is killed and re-executed instead
            of aborting the whole run (shard execution is
            deterministic in (scenario, seed), so reruns are
            bit-identical).  ``False`` keeps the bare process pool
            (the benchmark baseline).
        shard_timeout: wall-clock limit per shard attempt, seconds.
        shard_retries: re-executions allowed per shard before the run
            fails with :class:`~repro.errors.SupervisionError`.
        heartbeat_interval: how often supervised workers touch their
            heartbeat file.
        stale_after: kill a worker whose heartbeat is older than this
            (``None`` disables the hang watchdog).

    The returned :class:`RunResult` carries the merged dataset, the
    union of blacklist snapshots, summed event counts, critical-path
    ``perf`` phases (the per-phase *maximum* across shards — what an
    idealised K-worker pool pays) and the full per-shard breakdown in
    ``shard_perf``.
    """
    if seed is not None:
        scenario = scenario.with_seed(seed)
    if shards is None:
        shards = scenario.shards
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if shards == 1:
        # Force the scenario serial too: run_scenario dispatches
        # shards > 1 scenarios back here, so an explicit shards=1
        # override must not leave the field set.
        return run_scenario(
            scenario.with_shards(1), telemetry_budget=telemetry_budget
        )
    # Workers re-read the shard count from the serialized scenario;
    # keep the two in sync even when ``shards`` came in as an override.
    if scenario.shards != shards:
        scenario = scenario.with_shards(shards)
    started = time.perf_counter()
    serialized = scenario.to_json()
    spill_base: Path | None = None
    budget_dicts: list[dict | None] = [None] * shards
    if telemetry_budget is not None:
        # Resolve the directory once in the coordinator so an
        # unconfigured budget doesn't hand every worker its own
        # unrelated tempdir; workers then spill under shard-<i>/.
        spill_base = Path(telemetry_budget.resolve_spill_dir())
        budget_dicts = [
            telemetry_budget.with_spill_dir(
                spill_base / f"shard-{index}"
            ).to_dict()
            for index in range(shards)
        ]
    tasks = [
        (serialized, index, shards, budget_dicts[index])
        for index in range(shards)
    ]
    if jobs is None:
        jobs = min(shards, os.cpu_count() or 1)
    if jobs <= 1:
        shard_runs = [_execute_shard(task) for task in tasks]
    elif supervise:
        outcomes = list(
            supervise_iter(
                _execute_shard,
                tasks,
                jobs=min(jobs, shards),
                timeout=shard_timeout,
                retries=shard_retries,
                heartbeat_interval=heartbeat_interval,
                stale_after=stale_after,
            )
        )
        failed = sorted(
            (o for o in outcomes if not o.ok), key=lambda o: o.index
        )
        if failed:
            worst = failed[0]
            raise SupervisionError(
                f"shard {worst.index} failed after {worst.attempts} "
                f"attempt(s): {worst.error}"
                + (
                    f" (+{len(failed) - 1} more shards)"
                    if len(failed) > 1
                    else ""
                )
            )
        shard_runs = [
            o.result for o in sorted(outcomes, key=lambda o: o.index)
        ]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, shards)) as pool:
            shard_runs = list(pool.map(_execute_shard, tasks))
    for run in shard_runs:
        if run.spill_manifest is not None:
            run.dataset.attach_spilled_stores(run.spill_manifest)
    dataset, diagnostics = merge_shard_runs(
        scenario,
        shard_runs,
        telemetry_budget=telemetry_budget,
        spill_directory=(
            None if spill_base is None else spill_base / "merged"
        ),
    )
    elapsed = time.perf_counter() - started

    phases = sorted({name for run in shard_runs for name in run.perf})
    perf = {
        name: round(
            max(run.perf.get(name, 0.0) for run in shard_runs), 6
        )
        for name in phases
    }
    perf["merge"] = diagnostics["merge_seconds"]
    shard_perf = [
        {
            "shard": run.spec.index,
            "shards": run.spec.count,
            "owned_accounts": len(run.owned_addresses),
            "events_executed": run.events_executed,
            "elapsed_seconds": round(run.elapsed_seconds, 6),
            "phases": dict(run.perf),
        }
        for run in shard_runs
    ]
    blacklisted: set[str] = set()
    for run in shard_runs:
        blacklisted |= run.blacklisted_ips
    return RunResult(
        scenario=scenario,
        seed=scenario.seed,
        dataset=dataset,
        config=scenario.config,
        events_executed=sum(run.events_executed for run in shard_runs),
        blacklisted_ips=blacklisted,
        account_count=len(shard_runs[0].all_addresses),
        elapsed_seconds=elapsed,
        perf=perf,
        shard_perf=shard_perf,
    )


# ----------------------------------------------------------------------
# equivalence oracle
# ----------------------------------------------------------------------
def dataset_mismatches(
    expected: ObservedDataset, actual: ObservedDataset
) -> list[str]:
    """Field-for-field comparison of two datasets; empty means equal.

    Compares decoded *rows* (append order included), never raw column
    ids: two stores that interned strings in different orders but hold
    the same rows are equal.  This is the sharded-vs-serial oracle —
    tests and the shard benchmark gate both call it.
    """
    mismatches: list[str] = []

    def compare_rows(name: str, a, b) -> None:
        if len(a) != len(b):
            mismatches.append(
                f"{name}: {len(a)} rows vs {len(b)} rows"
            )
            return
        for i in range(len(a)):
            if a.row(i) != b.row(i):
                mismatches.append(
                    f"{name}: first divergence at row {i}: "
                    f"{a.row(i)!r} != {b.row(i)!r}"
                )
                return

    compare_rows(
        "accesses", expected.access_store, actual.access_store
    )
    compare_rows(
        "notifications",
        expected.notification_store,
        actual.notification_store,
    )
    compare_rows(
        "scrape_failures", expected.failure_log, actual.failure_log
    )
    compare_rows(
        "defense_actions", expected.defense_store, actual.defense_store
    )
    if list(expected.provenance) != list(actual.provenance):
        mismatches.append("provenance: account order differs")
    else:
        for address, left in expected.provenance.items():
            right = actual.provenance[address]
            if (left.group, left.leak_time) != (
                right.group,
                right.leak_time,
            ):
                mismatches.append(f"provenance[{address}] differs")
                break
    for name in ("monitor_ips", "monitor_city", "blocked_accounts"):
        if getattr(expected, name) != getattr(actual, name):
            mismatches.append(f"{name} differs")
    if expected.all_email_texts != actual.all_email_texts:
        mismatches.append("all_email_texts differs")
    if expected.ground_truth_personas != actual.ground_truth_personas:
        mismatches.append("ground_truth_personas differs")
    return mismatches
