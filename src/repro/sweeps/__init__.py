"""Distributed sweep orchestration with a memoized results store.

One-shot :class:`~repro.api.runner.BatchRunner` sweeps become
persistent, resumable **campaigns**:

* :class:`JobSpec` (:mod:`repro.sweeps.jobspec`) — a deterministic
  content address for each (scenario, seed, code-version) cell,
  derived from the scenario's canonical JSON;
* :class:`ResultsStore` (:mod:`repro.sweeps.store`) — an atomic,
  content-addressed on-disk store that memoizes completed cells, with
  ``ls``/``verify``/``gc`` maintenance;
* :class:`SweepManager` (:mod:`repro.sweeps.manager`) — plans the
  scenario × seed matrix, skips cached cells, journals every state
  transition to JSONL, survives kill-and-restart (``resume=True``),
  and requeues failures with a bounded retry budget;
* dispatch backends (:mod:`repro.sweeps.backends`) —
  :class:`InProcessBackend`, :class:`LocalPoolBackend`, and
  :class:`SubprocessBackend` behind one :class:`DispatchBackend`
  protocol, so the same sweep scales from "this process" to "one OS
  process per cell" (the shape SSH/SLURM dispatch slots into).

Quickstart::

    from repro import scenarios
    from repro.sweeps import ResultsStore, SweepManager

    store = ResultsStore("results-store")
    manager = SweepManager(
        [scenarios.get("fast")], seeds=range(2016, 2024), store=store
    )
    result = manager.run()            # executes 8 cells, memoizes each
    print(result.batch().aggregate().format())

    result = manager.run(resume=True)  # instant: all 8 load from disk
    assert result.cached == 8

The CLI mirrors this: ``python -m repro sweep --store DIR [--resume]
[--backend inprocess|pool|subprocess] [--retries N] [--max-cells N]``
plus ``python -m repro store ls|verify|gc``.
"""

from repro.sweeps.backends import (
    BACKEND_NAMES,
    CellOutcome,
    CellTask,
    DispatchBackend,
    InProcessBackend,
    LocalPoolBackend,
    SubprocessBackend,
    backend_from_name,
)
from repro.sweeps.jobspec import (
    CODE_VERSION_ENV,
    JobSpec,
    canonical_scenario_json,
    default_code_version,
)
from repro.sweeps.manager import (
    CellStatus,
    SweepCell,
    SweepManager,
    SweepResult,
    read_journal,
)
from repro.sweeps.store import ResultsStore, StoreEntry, open_store

__all__ = [
    "BACKEND_NAMES",
    "CODE_VERSION_ENV",
    "CellOutcome",
    "CellStatus",
    "CellTask",
    "DispatchBackend",
    "InProcessBackend",
    "JobSpec",
    "LocalPoolBackend",
    "ResultsStore",
    "StoreEntry",
    "SubprocessBackend",
    "SweepCell",
    "SweepManager",
    "SweepResult",
    "backend_from_name",
    "canonical_scenario_json",
    "default_code_version",
    "open_store",
    "read_journal",
]
