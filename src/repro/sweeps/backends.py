"""Pluggable dispatch backends for sweep cells.

A :class:`DispatchBackend` turns a batch of :class:`CellTask`s into
:class:`CellOutcome`s, yielding each outcome **as it completes** so the
:class:`~repro.sweeps.manager.SweepManager` can journal progress,
memoize results, and requeue failures incrementally.  Outcomes carry an
index back to the task, so completion order is free to differ from
submission order.

Three implementations ship:

* :class:`InProcessBackend` — runs cells serially in the calling
  process.  Zero marshalling overhead; the right default for one-off
  sweeps and the baseline the store-overhead benchmark gates against.
* :class:`LocalPoolBackend` — a ``ProcessPoolExecutor``, the same
  semantics :class:`~repro.api.runner.BatchRunner` uses: workers
  rebuild runs from the serialized scenario, so pooled results are
  bit-identical to in-process ones.
* :class:`SubprocessBackend` — shells out to ``python -m repro run
  --scenario-file ... --result-out ...`` per cell.  Each cell is a
  fully independent OS process with no shared interpreter state — the
  shape that generalizes to SSH/SLURM dispatch: replace the local
  ``Popen`` with a remote submit and the manager never knows.

Every backend must **contain** per-cell failures: a raising cell
becomes a failed :class:`CellOutcome`, never an exception that aborts
the generator (and with it every in-flight sibling).

Scenarios with ``shards > 1`` compose transparently: each cell's
``run_scenario`` call dispatches to the sharded executor, so one sweep
can saturate a fleet twice over (cells across workers, shards within a
cell).
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Protocol, Sequence, runtime_checkable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.envelope import RunResult


@dataclass(frozen=True)
class CellTask:
    """One dispatchable cell: a serialized scenario plus its seed."""

    index: int
    scenario_json: str
    seed: int


@dataclass(frozen=True)
class CellOutcome:
    """What one dispatched cell produced: a run or a contained failure."""

    index: int
    run: "RunResult | None"
    elapsed_seconds: float
    error: str | None = None
    traceback: str | None = None

    @property
    def ok(self) -> bool:
        return self.run is not None


@runtime_checkable
class DispatchBackend(Protocol):
    """The contract every dispatch backend satisfies."""

    #: Stable identifier used in journals and ``--backend`` flags.
    name: str

    def run_cells(
        self, tasks: Sequence[CellTask]
    ) -> Iterator[CellOutcome]:
        """Execute ``tasks``, yielding one outcome per task as it finishes."""
        ...  # pragma: no cover - protocol


def _execute_cell(task: CellTask) -> CellOutcome:
    """Run one cell in this process, containing any failure.

    Module-level so process pools can pickle it; the in-process backend
    calls it too, guaranteeing identical execution either way (the same
    serialize-rebuild-run discipline as ``BatchRunner``).
    """
    from repro.api.envelope import run_scenario
    from repro.api.scenario import Scenario

    started = time.perf_counter()
    try:
        scenario = Scenario.from_json(task.scenario_json)
        run = run_scenario(scenario, seed=task.seed)
    except Exception as exc:  # noqa: BLE001 - failures must be contained
        return CellOutcome(
            index=task.index,
            run=None,
            elapsed_seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )
    return CellOutcome(
        index=task.index,
        run=run,
        elapsed_seconds=time.perf_counter() - started,
    )


class InProcessBackend:
    """Serial execution in the calling process."""

    name = "inprocess"

    def run_cells(
        self, tasks: Sequence[CellTask]
    ) -> Iterator[CellOutcome]:
        for task in tasks:
            yield _execute_cell(task)


class LocalPoolBackend:
    """``ProcessPoolExecutor`` dispatch — today's ``BatchRunner`` shape."""

    name = "pool"

    def __init__(self, jobs: int = 2) -> None:
        if jobs < 1:
            raise ConfigurationError("pool backend needs jobs >= 1")
        self.jobs = jobs

    def run_cells(
        self, tasks: Sequence[CellTask]
    ) -> Iterator[CellOutcome]:
        if not tasks:
            return
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(tasks))
        ) as pool:
            pending = {
                pool.submit(_execute_cell, task) for task in tasks
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                yield from (future.result() for future in done)


class SubprocessBackend:
    """One ``python -m repro run`` child process per cell.

    The cell's scenario is written to a JSON file, the child runs it
    with ``--scenario-file``/``--result-out``, and the pickled
    :class:`RunResult` is read back.  ``jobs`` children run
    concurrently (each is its own OS process; the coordinating threads
    only block on ``Popen.wait``).  This is deliberately the dumbest
    possible remote-execution shape — swap the local ``Popen`` for
    ``ssh host python -m repro ...`` or ``sbatch`` and nothing above
    this class changes.
    """

    name = "subprocess"

    def __init__(
        self,
        jobs: int = 1,
        *,
        python: str | None = None,
        extra_args: Sequence[str] = (),
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("subprocess backend needs jobs >= 1")
        self.jobs = jobs
        self.python = python or sys.executable
        self.extra_args = tuple(extra_args)

    def run_cells(
        self, tasks: Sequence[CellTask]
    ) -> Iterator[CellOutcome]:
        from concurrent.futures import ThreadPoolExecutor

        if not tasks:
            return
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
            with ThreadPoolExecutor(
                max_workers=min(self.jobs, len(tasks))
            ) as pool:
                pending = {
                    pool.submit(self._run_one, task, Path(tmp))
                    for task in tasks
                }
                while pending:
                    done, pending = wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    yield from (future.result() for future in done)

    def _run_one(self, task: CellTask, tmp: Path) -> CellOutcome:
        import pickle

        started = time.perf_counter()
        scenario_path = tmp / f"cell-{task.index}.scenario.json"
        result_path = tmp / f"cell-{task.index}.result.pkl"
        scenario_path.write_text(task.scenario_json)
        command = [
            self.python,
            "-m",
            "repro",
            "run",
            "--scenario-file",
            str(scenario_path),
            "--seed",
            str(task.seed),
            "--result-out",
            str(result_path),
            *self.extra_args,
        ]
        try:
            completed = subprocess.run(
                command, capture_output=True, text=True, check=False
            )
        except OSError as exc:
            return CellOutcome(
                index=task.index,
                run=None,
                elapsed_seconds=time.perf_counter() - started,
                error=f"failed to spawn {self.python}: {exc}",
            )
        if completed.returncode != 0:
            tail = "\n".join(completed.stderr.splitlines()[-8:])
            return CellOutcome(
                index=task.index,
                run=None,
                elapsed_seconds=time.perf_counter() - started,
                error=(
                    f"exit status {completed.returncode} from "
                    f"'{' '.join(command[:4])} ...'"
                ),
                traceback=tail or None,
            )
        try:
            with result_path.open("rb") as handle:
                run = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            return CellOutcome(
                index=task.index,
                run=None,
                elapsed_seconds=time.perf_counter() - started,
                error=f"child produced no readable result: {exc}",
            )
        return CellOutcome(
            index=task.index,
            run=run,
            elapsed_seconds=time.perf_counter() - started,
        )


#: ``--backend`` flag values mapped to constructors taking ``jobs``.
BACKEND_NAMES = ("inprocess", "pool", "subprocess")


def backend_from_name(name: str, *, jobs: int = 1) -> DispatchBackend:
    """Build the backend the CLI asked for by name."""
    if name == "inprocess":
        return InProcessBackend()
    if name == "pool":
        return LocalPoolBackend(jobs=jobs)
    if name == "subprocess":
        return SubprocessBackend(jobs=jobs)
    raise ConfigurationError(
        f"unknown dispatch backend {name!r}; known: "
        + ", ".join(BACKEND_NAMES)
    )
