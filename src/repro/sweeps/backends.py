"""Pluggable dispatch backends for sweep cells.

A :class:`DispatchBackend` turns a batch of :class:`CellTask`s into
:class:`CellOutcome`s, yielding each outcome **as it completes** so the
:class:`~repro.sweeps.manager.SweepManager` can journal progress,
memoize results, and requeue failures incrementally.  Outcomes carry an
index back to the task, so completion order is free to differ from
submission order.

Three implementations ship:

* :class:`InProcessBackend` — runs cells serially in the calling
  process.  Zero marshalling overhead; the right default for one-off
  sweeps and the baseline the store-overhead benchmark gates against.
* :class:`LocalPoolBackend` — forked workers under
  :func:`repro.faults.supervise.supervise_iter`: the pooled semantics
  :class:`~repro.api.runner.BatchRunner` established (workers rebuild
  runs from the serialized scenario, so pooled results are
  bit-identical to in-process ones) but with one forked child per
  cell, so a SIGKILLed or hung worker costs exactly that cell — not a
  ``BrokenProcessPool`` that aborts every in-flight sibling.
* :class:`SubprocessBackend` — shells out to ``python -m repro run
  --scenario-file ... --result-out ...`` per cell.  Each cell is a
  fully independent OS process with no shared interpreter state — the
  shape that generalizes to SSH/SLURM dispatch: replace the local
  ``Popen`` with a remote submit and the manager never knows.

Every backend must **contain** per-cell failures: a raising, crashing,
or timed-out cell becomes a failed :class:`CellOutcome`, never an
exception that aborts the generator (and with it every in-flight
sibling).  Both process-spawning backends take a ``cell_timeout``:
a cell past its wall-clock budget is killed and reported failed, and
the :class:`~repro.sweeps.manager.SweepManager` requeues it under its
retry policy.

Scenarios with ``shards > 1`` compose transparently: each cell's
``run_scenario`` call dispatches to the sharded executor, so one sweep
can saturate a fleet twice over (cells across workers, shards within a
cell).
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Protocol, Sequence, runtime_checkable

from repro.errors import ConfigurationError
from repro.faults.plan import fault_site
from repro.faults.supervise import supervise_iter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.envelope import RunResult


@dataclass(frozen=True)
class CellTask:
    """One dispatchable cell: a serialized scenario plus its seed."""

    index: int
    scenario_json: str
    seed: int


@dataclass(frozen=True)
class CellOutcome:
    """What one dispatched cell produced: a run or a contained failure."""

    index: int
    run: "RunResult | None"
    elapsed_seconds: float
    error: str | None = None
    traceback: str | None = None

    @property
    def ok(self) -> bool:
        return self.run is not None


@runtime_checkable
class DispatchBackend(Protocol):
    """The contract every dispatch backend satisfies."""

    #: Stable identifier used in journals and ``--backend`` flags.
    name: str

    def run_cells(
        self, tasks: Sequence[CellTask]
    ) -> Iterator[CellOutcome]:
        """Execute ``tasks``, yielding one outcome per task as it finishes."""
        ...  # pragma: no cover - protocol


def _execute_cell(task: CellTask) -> CellOutcome:
    """Run one cell in this process, containing any failure.

    Module-level so process pools can pickle it; the in-process backend
    calls it too, guaranteeing identical execution either way (the same
    serialize-rebuild-run discipline as ``BatchRunner``).
    """
    from repro.api.envelope import run_scenario
    from repro.api.scenario import Scenario

    started = time.perf_counter()
    try:
        fault_site("sweep.cell", index=task.index, seed=task.seed)
        scenario = Scenario.from_json(task.scenario_json)
        run = run_scenario(scenario, seed=task.seed)
    except Exception as exc:  # noqa: BLE001 - failures must be contained
        return CellOutcome(
            index=task.index,
            run=None,
            elapsed_seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )
    return CellOutcome(
        index=task.index,
        run=run,
        elapsed_seconds=time.perf_counter() - started,
    )


class InProcessBackend:
    """Serial execution in the calling process."""

    name = "inprocess"

    def run_cells(
        self, tasks: Sequence[CellTask]
    ) -> Iterator[CellOutcome]:
        for task in tasks:
            yield _execute_cell(task)


class LocalPoolBackend:
    """Supervised forked-worker dispatch — ``BatchRunner`` semantics,
    crash-isolated.

    Each cell runs in its own forked child under
    :func:`~repro.faults.supervise.supervise_iter`.  A child that
    crashes, exceeds ``cell_timeout``, or goes heartbeat-silent for
    ``stale_after`` seconds is killed and surfaced as a *failed*
    outcome for that one cell; the manager's retry loop decides
    whether to requeue it (the backend itself never retries — retry
    accounting lives in one place).
    """

    name = "pool"

    def __init__(
        self,
        jobs: int = 2,
        *,
        cell_timeout: float | None = None,
        stale_after: float | None = None,
        heartbeat_interval: float = 0.2,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("pool backend needs jobs >= 1")
        self.jobs = jobs
        self.cell_timeout = cell_timeout
        self.stale_after = stale_after
        self.heartbeat_interval = heartbeat_interval

    def run_cells(
        self, tasks: Sequence[CellTask]
    ) -> Iterator[CellOutcome]:
        if not tasks:
            return
        tasks = list(tasks)
        for outcome in supervise_iter(
            _execute_cell,
            tasks,
            jobs=min(self.jobs, len(tasks)),
            timeout=self.cell_timeout,
            retries=0,
            heartbeat_interval=self.heartbeat_interval,
            stale_after=self.stale_after,
        ):
            if outcome.ok:
                yield outcome.result
            else:
                task = tasks[outcome.index]
                yield CellOutcome(
                    index=task.index,
                    run=None,
                    elapsed_seconds=outcome.elapsed_seconds,
                    error=f"worker {outcome.error}",
                )


class SubprocessBackend:
    """One ``python -m repro run`` child process per cell.

    The cell's scenario is written to a JSON file, the child runs it
    with ``--scenario-file``/``--result-out``, and the pickled
    :class:`RunResult` is read back.  ``jobs`` children run
    concurrently (each is its own OS process; the coordinating threads
    only block on ``Popen.communicate``).  This is deliberately the
    dumbest possible remote-execution shape — swap the local ``Popen``
    for ``ssh host python -m repro ...`` or ``sbatch`` and nothing
    above this class changes.

    Children never outlive the dispatch: a cell past ``cell_timeout``
    is killed and reported failed, and if the parent unwinds mid-sweep
    (``KeyboardInterrupt``, generator closed early) every live child
    is killed and each cell's scenario/result scratch files are
    removed — no orphaned workers, no leaked temp files.
    """

    name = "subprocess"

    def __init__(
        self,
        jobs: int = 1,
        *,
        python: str | None = None,
        extra_args: Sequence[str] = (),
        cell_timeout: float | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("subprocess backend needs jobs >= 1")
        self.jobs = jobs
        self.python = python or sys.executable
        self.extra_args = tuple(extra_args)
        self.cell_timeout = cell_timeout

    def run_cells(
        self, tasks: Sequence[CellTask]
    ) -> Iterator[CellOutcome]:
        from concurrent.futures import ThreadPoolExecutor

        if not tasks:
            return
        # Live children, keyed by cell index.  Worker threads register
        # every Popen here so the finally below can kill stragglers
        # whenever the generator unwinds — normal exhaustion, an early
        # close(), or a KeyboardInterrupt riding through yield.
        live: dict[int, subprocess.Popen] = {}
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
            pool = ThreadPoolExecutor(
                max_workers=min(self.jobs, len(tasks))
            )
            try:
                pending = {
                    pool.submit(self._run_one, task, Path(tmp), live)
                    for task in tasks
                }
                while pending:
                    done, pending = wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    yield from (future.result() for future in done)
            finally:
                for proc in list(live.values()):
                    proc.kill()
                pool.shutdown(wait=True, cancel_futures=True)

    def _run_one(
        self,
        task: CellTask,
        tmp: Path,
        live: dict[int, subprocess.Popen],
    ) -> CellOutcome:
        import pickle

        started = time.perf_counter()
        scenario_path = tmp / f"cell-{task.index}.scenario.json"
        result_path = tmp / f"cell-{task.index}.result.pkl"

        def fail(error: str, tb: str | None = None) -> CellOutcome:
            return CellOutcome(
                index=task.index,
                run=None,
                elapsed_seconds=time.perf_counter() - started,
                error=error,
                traceback=tb,
            )

        scenario_path.write_text(task.scenario_json)
        command = [
            self.python,
            "-m",
            "repro",
            "run",
            "--scenario-file",
            str(scenario_path),
            "--seed",
            str(task.seed),
            "--result-out",
            str(result_path),
            *self.extra_args,
        ]
        proc: subprocess.Popen | None = None
        try:
            try:
                proc = subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
            except OSError as exc:
                return fail(f"failed to spawn {self.python}: {exc}")
            live[task.index] = proc
            try:
                _, stderr = proc.communicate(timeout=self.cell_timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()
                return fail(
                    f"cell timed out after {self.cell_timeout:.6g}s "
                    "(worker killed)"
                )
            except BaseException:
                # Interrupted mid-cell: take the child down with us.
                proc.kill()
                proc.communicate()
                raise
            if proc.returncode != 0:
                tail = "\n".join(stderr.splitlines()[-8:])
                return fail(
                    f"exit status {proc.returncode} from "
                    f"'{' '.join(command[:4])} ...'",
                    tail or None,
                )
            try:
                with result_path.open("rb") as handle:
                    run = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError) as exc:
                return fail(f"child produced no readable result: {exc}")
            return CellOutcome(
                index=task.index,
                run=run,
                elapsed_seconds=time.perf_counter() - started,
            )
        finally:
            live.pop(task.index, None)
            for path in (scenario_path, result_path):
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass


#: ``--backend`` flag values mapped to constructors taking ``jobs``.
BACKEND_NAMES = ("inprocess", "pool", "subprocess")


def backend_from_name(
    name: str, *, jobs: int = 1, cell_timeout: float | None = None
) -> DispatchBackend:
    """Build the backend the CLI asked for by name.

    ``cell_timeout`` applies to the process-spawning backends; the
    in-process backend has no worker to kill and ignores it.
    """
    if name == "inprocess":
        return InProcessBackend()
    if name == "pool":
        return LocalPoolBackend(jobs=jobs, cell_timeout=cell_timeout)
    if name == "subprocess":
        return SubprocessBackend(jobs=jobs, cell_timeout=cell_timeout)
    raise ConfigurationError(
        f"unknown dispatch backend {name!r}; known: "
        + ", ".join(BACKEND_NAMES)
    )
