"""Persistent, resumable, memoized sweep campaigns.

:class:`SweepManager` plans a scenario × seed matrix into cells, checks
each cell's content address against the :class:`ResultsStore`, and
dispatches only the missing ones on a pluggable
:class:`~repro.sweeps.backends.DispatchBackend`.  Every state
transition is journaled to a JSONL progress log inside the store, so a
killed sweep leaves a readable record and a re-launched one
(``resume=True`` / ``--resume``) picks up exactly where it stopped:
completed cells load from the store instead of re-executing, and the
final :class:`~repro.api.runner.BatchResult` is bit-identical to an
uninterrupted run's (runs are deterministic in (scenario, seed), so
*where* a result came from cannot matter).

Failed cells are requeued with a bounded budget (``retries`` extra
attempts per cell); cells that exhaust it surface as
:class:`~repro.api.runner.FailedRun` records on the batch — or raise,
in strict mode.  ``max_cells`` caps how many uncached cells one
invocation executes, which is both a cost-control knob and the hook
the resume smoke test uses to simulate a killed sweep.

Journal records are JSON objects, one per line, ``event``-tagged:

``launch``
    one per invocation: backend, cell counts, code version;
``cell``
    one per state transition, with ``status`` ∈ ``cached`` /
    ``running`` / ``done`` / ``requeued`` / ``failed`` / ``deferred``
    plus the cell's scenario, seed, and address;
``finish``
    one per invocation: final counts and wall-clock seconds.
"""

from __future__ import annotations

import enum
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.api.runner import BatchResult, FailedRun
from repro.api.scenario import Scenario
from repro.errors import ConfigurationError, SweepError
from repro.faults.retry import RetryBudget, RetryPolicy
from repro.sweeps.backends import (
    CellTask,
    DispatchBackend,
    InProcessBackend,
)
from repro.sweeps.jobspec import JobSpec, default_code_version
from repro.sweeps.store import ResultsStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.envelope import RunResult


class CellStatus(enum.Enum):
    """Lifecycle of one sweep cell."""

    PENDING = "pending"
    DEFERRED = "deferred"
    CACHED = "cached"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass(eq=False)
class SweepCell:
    """One (scenario, seed) cell of the sweep matrix."""

    spec: JobSpec
    scenario: Scenario
    seed: int
    index: int = 0
    status: CellStatus = CellStatus.PENDING
    attempts: int = 0
    error: str | None = None
    traceback: str | None = field(default=None, repr=False)
    run: "RunResult | None" = field(default=None, repr=False)

    @property
    def address(self) -> str:
        return self.spec.address


@dataclass
class SweepResult:
    """What one :meth:`SweepManager.run` invocation produced."""

    cells: list[SweepCell]
    elapsed_seconds: float
    backend_name: str

    def counts(self) -> dict[str, int]:
        counts = {status.value: 0 for status in CellStatus}
        for cell in self.cells:
            counts[cell.status.value] += 1
        return counts

    @property
    def executed(self) -> int:
        return sum(1 for c in self.cells if c.status is CellStatus.DONE)

    @property
    def cached(self) -> int:
        return sum(1 for c in self.cells if c.status is CellStatus.CACHED)

    @property
    def failed(self) -> int:
        return sum(1 for c in self.cells if c.status is CellStatus.FAILED)

    @property
    def deferred(self) -> int:
        return sum(
            1
            for c in self.cells
            if c.status in (CellStatus.DEFERRED, CellStatus.PENDING)
        )

    @property
    def complete(self) -> bool:
        """Every cell resolved to a run (none failed, none deferred)."""
        return all(
            c.status in (CellStatus.DONE, CellStatus.CACHED)
            for c in self.cells
        )

    def batch(self) -> BatchResult:
        """The runs as a :class:`BatchResult`, in stable plan order.

        Cached and freshly-executed cells are indistinguishable here —
        both contribute their :class:`RunResult`; failed cells become
        :class:`FailedRun` records, exactly as ``BatchRunner`` reports
        them.
        """
        runs = [
            cell.run
            for cell in self.cells
            if cell.run is not None
        ]
        failures = [
            FailedRun(
                scenario_name=cell.scenario.name,
                seed=cell.seed,
                error=cell.error or "unknown failure",
                traceback=cell.traceback or "",
            )
            for cell in self.cells
            if cell.status is CellStatus.FAILED
        ]
        return BatchResult(runs=runs, failures=failures)


class SweepManager:
    """Plans, dispatches, journals, and memoizes one sweep campaign.

    Args:
        scenario_list: scenarios to sweep (names must be unique).
        seeds: master seeds; the matrix is the full cross product in
            scenario-major, seed-minor order (the ``BatchRunner``
            ordering).
        store: the memoizing results store.
        code_version: the code-version token folded into every cell
            address (default: :func:`default_code_version`).
        retries: extra attempts per failed cell before it is declared
            failed (0 = no requeue).
        retry_policy: backoff schedule between requeue rounds (a
            :class:`repro.faults.retry.RetryPolicy`); its ``attempts``
            field is ignored — per-cell attempt accounting stays with
            ``retries``.  The same policy guards ``store.put`` against
            transient IO errors.  Default: the shared IO policy.
        retry_budget: optional :class:`repro.faults.retry.RetryBudget`
            capping *total* requeues across the whole sweep; once spent,
            further failing cells fail immediately.
        journal_path: where to journal (default:
            ``<store root>/journal.jsonl``).
        progress: optional callback receiving every journal record as
            a dict, for live progress displays.
    """

    def __init__(
        self,
        scenario_list: "Scenario | Sequence[Scenario]",
        seeds: Iterable[int],
        store: ResultsStore,
        *,
        code_version: str | None = None,
        retries: int = 1,
        retry_policy: RetryPolicy | None = None,
        retry_budget: RetryBudget | None = None,
        journal_path: str | Path | None = None,
        progress: Callable[[dict], None] | None = None,
    ) -> None:
        if isinstance(scenario_list, Scenario):
            scenario_list = [scenario_list]
        self.scenario_list = list(scenario_list)
        self.seeds = list(seeds)
        if not self.scenario_list:
            raise ConfigurationError("need at least one scenario")
        if not self.seeds:
            raise ConfigurationError("need at least one seed")
        names = [s.name for s in self.scenario_list]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                "scenario names in a sweep must be unique "
                "(use with_name() to disambiguate)"
            )
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        self.store = store
        self.code_version = code_version or default_code_version()
        self.retries = retries
        self.retry_policy = retry_policy or RetryPolicy()
        self.retry_budget = retry_budget
        self.journal_path = (
            Path(journal_path) if journal_path else store.journal_path
        )
        self.progress = progress

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self) -> list[SweepCell]:
        """The full cell matrix, with already-stored cells marked cached."""
        cells: list[SweepCell] = []
        for scenario in self.scenario_list:
            for seed in self.seeds:
                spec = JobSpec.for_cell(
                    scenario, seed, code_version=self.code_version
                )
                status = (
                    CellStatus.CACHED
                    if spec in self.store
                    else CellStatus.PENDING
                )
                cells.append(
                    SweepCell(
                        spec=spec,
                        scenario=scenario.with_seed(seed),
                        seed=seed,
                        index=len(cells),
                        status=status,
                    )
                )
        return cells

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        backend: DispatchBackend | None = None,
        *,
        resume: bool = False,
        max_cells: int | None = None,
        strict: bool = False,
    ) -> SweepResult:
        """Execute the sweep, memoizing through the store.

        ``resume=False`` refuses to run against a store whose journal
        shows a previous invocation — resuming must be explicit, so a
        stale store path cannot silently serve old results.  With
        ``resume=True`` cached cells are loaded instead of re-executed.

        ``max_cells`` caps the number of *uncached* cells this
        invocation dispatches (retries of a dispatched cell do not
        count); the rest are journaled as deferred.  ``strict=True``
        raises :class:`~repro.errors.SweepError` if any cell exhausts
        its retry budget.
        """
        if max_cells is not None and max_cells < 0:
            raise ConfigurationError("max_cells must be >= 0")
        if self.journal_path.exists() and not resume:
            raise ConfigurationError(
                f"journal {self.journal_path} records a previous sweep; "
                "pass resume=True (--resume) to continue it, or point "
                "the sweep at a fresh store"
            )
        backend = backend or InProcessBackend()
        started = time.perf_counter()
        cells = self.plan()

        dispatchable = [
            c for c in cells if c.status is CellStatus.PENDING
        ]
        if max_cells is not None:
            for cell in dispatchable[max_cells:]:
                cell.status = CellStatus.DEFERRED
            dispatchable = dispatchable[:max_cells]

        self._journal(
            {
                "event": "launch",
                "backend": backend.name,
                "code_version": self.code_version,
                "cells": len(cells),
                "cached": sum(
                    1 for c in cells if c.status is CellStatus.CACHED
                ),
                "dispatching": len(dispatchable),
                "deferred": sum(
                    1 for c in cells if c.status is CellStatus.DEFERRED
                ),
                "retries": self.retries,
            }
        )

        for cell in cells:
            if cell.status is CellStatus.CACHED:
                cell.run = self.store.get(cell.spec)
                self._journal_cell(cell, "cached")
            elif cell.status is CellStatus.DEFERRED:
                self._journal_cell(cell, "deferred")

        queue = list(dispatchable)
        while queue:
            tasks = []
            for cell in queue:
                cell.status = CellStatus.RUNNING
                self._journal_cell(cell, "running")
                tasks.append(
                    CellTask(
                        index=cell.index,
                        scenario_json=cell.scenario.to_json(),
                        seed=cell.seed,
                    )
                )
            requeue: list[tuple[SweepCell, float]] = []
            for outcome in backend.run_cells(tasks):
                cell = cells[outcome.index]
                cell.attempts += 1
                if outcome.ok:
                    cell.run = outcome.run
                    cell.error = None
                    cell.traceback = None
                    cell.status = CellStatus.DONE
                    self._store_with_retry(cell, outcome.run)
                    self._journal_cell(
                        cell,
                        "done",
                        elapsed_seconds=round(
                            outcome.elapsed_seconds, 6
                        ),
                        attempts=cell.attempts,
                    )
                else:
                    cell.error = outcome.error
                    cell.traceback = outcome.traceback
                    if (
                        cell.attempts <= self.retries
                        and self._take_retry()
                    ):
                        cell.status = CellStatus.PENDING
                        delay = self.retry_policy.delay(
                            cell.attempts, key=cell.address
                        )
                        requeue.append((cell, delay))
                        self._journal_cell(
                            cell,
                            "requeued",
                            error=outcome.error,
                            attempts=cell.attempts,
                            delay_seconds=round(delay, 6),
                        )
                    else:
                        cell.status = CellStatus.FAILED
                        self._journal_cell(
                            cell,
                            "failed",
                            error=outcome.error,
                            attempts=cell.attempts,
                        )
            if requeue:
                # One backoff per round: the slowest cell's schedule
                # (per-cell sleeps would serialize the round).
                pause = max(delay for _, delay in requeue)
                if pause > 0:
                    time.sleep(pause)
            queue = [cell for cell, _ in requeue]

        result = SweepResult(
            cells=cells,
            elapsed_seconds=time.perf_counter() - started,
            backend_name=backend.name,
        )
        self._journal(
            {
                "event": "finish",
                "elapsed_seconds": round(result.elapsed_seconds, 6),
                **result.counts(),
            }
        )
        if strict and result.failed:
            first = next(
                c for c in cells if c.status is CellStatus.FAILED
            )
            raise SweepError(
                f"{result.failed} cell(s) failed after "
                f"{self.retries + 1} attempt(s); first: "
                f"{first.scenario.name} seed={first.seed}: {first.error}"
            )
        return result

    # ------------------------------------------------------------------
    # retry plumbing
    # ------------------------------------------------------------------
    def _take_retry(self) -> bool:
        """Consume one requeue from the sweep-wide budget (if any)."""
        if self.retry_budget is None:
            return True
        if self.retry_budget.take():
            return True
        self._journal(
            {
                "event": "retry_budget_exhausted",
                "limit": self.retry_budget.limit,
            }
        )
        return False

    def _store_with_retry(self, cell: SweepCell, run) -> None:
        """Memoize a finished run, riding out transient store IO errors.

        A run that took minutes to compute must not be lost to one
        flaky write; each retry is journaled so the recovery is
        visible in the campaign record.
        """
        self.retry_policy.call(
            lambda: self.store.put(cell.spec, run),
            retry_on=(OSError,),
            key=cell.address,
            on_retry=lambda attempt, pause, exc: self._journal_cell(
                cell,
                "store_retry",
                error=f"{type(exc).__name__}: {exc}",
                attempts=attempt,
                delay_seconds=round(pause, 6),
            ),
        )

    # ------------------------------------------------------------------
    # journaling
    # ------------------------------------------------------------------
    def _journal(self, record: dict) -> None:
        record = {"ts": round(time.time(), 3), **record}
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        with self.journal_path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        if self.progress is not None:
            self.progress(record)

    def _journal_cell(self, cell: SweepCell, status: str, **extra) -> None:
        self._journal(
            {
                "event": "cell",
                "status": status,
                "scenario": cell.scenario.name,
                "seed": cell.seed,
                "address": cell.address,
                **extra,
            }
        )


def read_journal(path: str | Path) -> list[dict]:
    """Parse a sweep journal back into its records (for tests/tools)."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
