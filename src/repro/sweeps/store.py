"""The content-addressed, memoized on-disk results store.

Layout (everything under one root directory)::

    <root>/
        objects/<aa>/<address>.pkl    # pickled RunResult payload
        objects/<aa>/<address>.json   # JSON sidecar (commit marker)
        journal.jsonl                 # sweep journal (SweepManager)

``<aa>`` is the first two hex digits of the address, fanning the
object tree out so no directory grows unboundedly.  Writes are
**atomic and ordered**: payload and sidecar are each written to a
``.tmp.<pid>`` file in the final directory and ``os.replace``d into
place, payload first — the sidecar is the commit marker, so a crash
mid-``put`` can strand a payload (reclaimed by :meth:`gc`) but never
produce an entry that looks complete and isn't.

The sidecar carries everything needed to *trust* and *inspect* an
entry without unpickling it: the spec fields (scenario name, seed,
code version, canonical scenario JSON), the payload's size and sha256,
and the run's headline summary/perf numbers.  :meth:`verify` re-hashes
payloads and re-derives addresses from sidecar specs; :meth:`gc`
drops entries from other code versions plus any stranded halves.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigurationError
from repro.faults.plan import fault_site
from repro.sweeps.jobspec import JobSpec, compute_address, default_code_version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.envelope import RunResult

#: Sidecar schema version, bumped on incompatible layout changes.
SIDECAR_FORMAT_VERSION = 1


@dataclass(frozen=True)
class StoreEntry:
    """One committed cell, as described by its sidecar."""

    address: str
    scenario_name: str
    seed: int
    code_version: str
    payload_bytes: int
    payload_sha256: str
    created_at: float
    elapsed_seconds: float
    summary: dict

    @classmethod
    def from_sidecar(cls, data: dict) -> "StoreEntry":
        spec = data["spec"]
        return cls(
            address=data["address"],
            scenario_name=spec["scenario_name"],
            seed=spec["seed"],
            code_version=spec["code_version"],
            payload_bytes=data["payload"]["bytes"],
            payload_sha256=data["payload"]["sha256"],
            created_at=data["created_at"],
            elapsed_seconds=data["run"]["elapsed_seconds"],
            summary=data["run"]["overview"],
        )


class ResultsStore:
    """Content-addressed memo table of completed sweep cells.

    Writes are always atomic against **process** crashes: each file
    lands via tmp-write + ``os.replace``, and the page cache survives
    a killed process, so a sweep SIGKILLed mid-``put`` never leaves a
    torn entry.  ``durable=True`` additionally fsyncs payload, sidecar,
    and directory before reporting a cell committed, extending the
    guarantee to kernel crashes and power loss — at roughly the cost
    of one disk flush per megabyte stored, which is why it is opt-in.
    """

    def __init__(self, root: str | Path, *, durable: bool = False) -> None:
        self.root = Path(root)
        self.durable = durable
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    def _payload_path(self, address: str) -> Path:
        return self.objects_dir / address[:2] / f"{address}.pkl"

    def _sidecar_path(self, address: str) -> Path:
        return self.objects_dir / address[:2] / f"{address}.json"

    @staticmethod
    def _address_of(key: "JobSpec | str") -> str:
        return key.address if isinstance(key, JobSpec) else key

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def __contains__(self, key: "JobSpec | str") -> bool:
        # The sidecar is the commit marker; a payload without one is an
        # interrupted put and does not count as present.
        address = self._address_of(key)
        return (
            self._sidecar_path(address).exists()
            and self._payload_path(address).exists()
        )

    def get(self, key: "JobSpec | str") -> "RunResult | None":
        """The memoized run for ``key``, or ``None`` when absent."""
        address = self._address_of(key)
        if key not in self:
            return None
        with self._payload_path(address).open("rb") as handle:
            return pickle.load(handle)

    def entry(self, key: "JobSpec | str") -> StoreEntry | None:
        address = self._address_of(key)
        sidecar = self._sidecar_path(address)
        if not sidecar.exists():
            return None
        return StoreEntry.from_sidecar(json.loads(sidecar.read_text()))

    def entries(self) -> list[StoreEntry]:
        """Every committed entry, sorted by (scenario, seed, address)."""
        found = [
            StoreEntry.from_sidecar(json.loads(path.read_text()))
            for path in self._sidecar_paths()
        ]
        found.sort(key=lambda e: (e.scenario_name, e.seed, e.address))
        return found

    def __len__(self) -> int:
        return sum(1 for _ in self._sidecar_paths())

    def _sidecar_paths(self) -> Iterator[Path]:
        yield from sorted(self.objects_dir.glob("??/*.json"))

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def encode(self, spec: JobSpec, run: "RunResult") -> tuple[bytes, dict]:
        """The payload bytes and sidecar dict for one cell.

        This is the CPU half of :meth:`put` — pickling, hashing, and
        summarising — split out so the store-overhead benchmark can
        gate it separately from raw byte-push, whose cost belongs to
        the disk, not the store.
        """
        payload = pickle.dumps(run, protocol=pickle.HIGHEST_PROTOCOL)
        sidecar = {
            "format_version": SIDECAR_FORMAT_VERSION,
            "address": spec.address,
            "spec": {
                "scenario_name": spec.scenario_name,
                "seed": spec.seed,
                "code_version": spec.code_version,
                "canonical": spec.canonical,
            },
            "payload": {
                "bytes": len(payload),
                "sha256": hashlib.sha256(payload).hexdigest(),
            },
            "created_at": time.time(),
            "run": {
                "elapsed_seconds": run.elapsed_seconds,
                "events_executed": run.events_executed,
                "overview": _overview_summary(run),
            },
        }
        return payload, sidecar

    def put(self, spec: JobSpec, run: "RunResult") -> StoreEntry:
        """Commit one finished cell atomically; returns its entry.

        Last write wins on a concurrent double-put of the same address;
        since addresses pin (scenario, seed, code version) and runs are
        deterministic, both writers store the same result.
        """
        fault_site("store.put", address=spec.address)
        payload, sidecar = self.encode(spec, run)
        directory = self._payload_path(spec.address).parent
        directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self._payload_path(spec.address), payload
        )
        self._atomic_write(
            self._sidecar_path(spec.address),
            json.dumps(sidecar, indent=2, sort_keys=True).encode(),
        )
        return StoreEntry.from_sidecar(sidecar)

    def _atomic_write(self, path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            handle.write(data)
            if self.durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.durable:
            # The rename itself must survive power loss too.
            fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def verify(self, *, quarantine: bool = False) -> list[str]:
        """Integrity-check every entry; returns human-readable problems.

        Three invariants per entry: the sidecar parses and matches its
        filename, the payload's sha256 matches the sidecar's record,
        and the address re-derives from the sidecar's own spec fields.
        Payloads without sidecars are reported as interrupted puts.

        With ``quarantine=True``, every offending entry (payload and
        sidecar both, whichever exist) is *moved* to
        ``<root>/quarantine/<aa>/`` instead of left in place.  The
        address then reads as absent, so the next ``sweep --resume``
        recomputes those cells — turning a corrupted store back into a
        merely incomplete one, with the evidence preserved for
        inspection.
        """
        problems: list[str] = []
        bad_addresses: set[str] = set()
        seen_payloads: set[Path] = set()
        for sidecar_path in self._sidecar_paths():
            address = sidecar_path.stem
            try:
                data = json.loads(sidecar_path.read_text())
            except (json.JSONDecodeError, OSError) as exc:
                problems.append(f"{address}: unreadable sidecar ({exc})")
                bad_addresses.add(address)
                continue
            if data.get("address") != address:
                problems.append(
                    f"{address}: sidecar claims address "
                    f"{data.get('address')!r}"
                )
                bad_addresses.add(address)
            spec = data.get("spec", {})
            derived = compute_address(
                spec.get("canonical", ""),
                spec.get("seed", -1),
                spec.get("code_version", ""),
            )
            if derived != address:
                problems.append(
                    f"{address}: spec does not hash to the address "
                    "(sidecar tampered or canonicalization changed)"
                )
                bad_addresses.add(address)
            payload_path = self._payload_path(address)
            seen_payloads.add(payload_path)
            if not payload_path.exists():
                problems.append(f"{address}: payload missing")
                bad_addresses.add(address)
                continue
            digest = hashlib.sha256(payload_path.read_bytes()).hexdigest()
            if digest != data.get("payload", {}).get("sha256"):
                problems.append(f"{address}: payload sha256 mismatch")
                bad_addresses.add(address)
        for payload_path in sorted(self.objects_dir.glob("??/*.pkl")):
            if payload_path not in seen_payloads:
                problems.append(
                    f"{payload_path.stem}: payload without sidecar "
                    "(interrupted put)"
                )
                bad_addresses.add(payload_path.stem)
        if quarantine and bad_addresses:
            for address in sorted(bad_addresses):
                self._quarantine_entry(address)
        return problems

    def _quarantine_entry(self, address: str) -> None:
        """Move one entry's surviving files under ``quarantine/``."""
        for path in (
            self._payload_path(address),
            self._sidecar_path(address),
        ):
            if not path.exists():
                continue
            target = self.quarantine_dir / address[:2] / path.name
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)

    def gc(self, *, keep_code_version: str | None = None) -> list[str]:
        """Delete stale objects; returns the removed addresses.

        Removes entries whose code version differs from
        ``keep_code_version`` (default: the current
        :func:`default_code_version`), stranded payloads from
        interrupted puts, orphaned sidecars, and leftover temp files.
        """
        if keep_code_version is None:
            keep_code_version = default_code_version()
        removed: list[str] = []
        for sidecar_path in list(self._sidecar_paths()):
            address = sidecar_path.stem
            payload_path = self._payload_path(address)
            try:
                data = json.loads(sidecar_path.read_text())
                version = data["spec"]["code_version"]
            except (json.JSONDecodeError, KeyError, OSError):
                version = None  # unreadable sidecar: reclaim it
            if version == keep_code_version and payload_path.exists():
                continue
            sidecar_path.unlink(missing_ok=True)
            payload_path.unlink(missing_ok=True)
            removed.append(address)
        for stray in sorted(self.objects_dir.glob("??/*")):
            if stray.suffix == ".json":
                continue
            if stray.suffix == ".pkl" and self._sidecar_path(
                stray.stem
            ).exists():
                continue
            stray.unlink(missing_ok=True)
            if stray.suffix == ".pkl":
                removed.append(stray.stem)
        return removed


def open_store(root: str | Path, *, must_exist: bool = False) -> ResultsStore:
    """Open (or create) the store rooted at ``root``.

    ``must_exist=True`` refuses to create a new store — the right mode
    for read-only maintenance commands, where a typo'd path should be
    an error, not a fresh empty store.
    """
    root = Path(root)
    if must_exist and not (root / "objects").is_dir():
        raise ConfigurationError(
            f"no results store at {root} (missing objects/ directory)"
        )
    return ResultsStore(root)


def _overview_summary(run: "RunResult") -> dict:
    stats = run.overview()
    return {
        "unique_accesses": stats.unique_accesses,
        "emails_read": stats.emails_read,
        "emails_sent": stats.emails_sent,
        "blocked_accounts": stats.blocked_accounts,
        "located_accesses": stats.located_accesses,
        "unlocated_accesses": stats.unlocated_accesses,
    }
