"""Deterministic job identities for memoized sweeps.

A :class:`JobSpec` names one sweep cell — *this* scenario, under *this*
seed, on *this* version of the code — and hashes that identity into a
content address.  The address is what makes the results store
(:mod:`repro.sweeps.store`) a memo table: a re-launched sweep computes
the same addresses, finds them on disk, and skips the work.

Identity is derived from the scenario's **canonical JSON**, not its
Python object graph: the serialized form is reduced through
:func:`repro.analysis.fingerprint.canonicalize` (deterministic dict
ordering, 10-significant-digit floats), so a scenario built fluently,
parsed from JSON, or rebuilt from a dict all hash to the same address
in any process.  Any semantic change — seed, persona mix, duration,
leak plan, shard count — changes the canonical form and therefore the
address; cosmetic differences (dict insertion order, float ulps) do
not.

The **code-version token** keeps memoized results honest across code
changes: results computed by a different version of the simulator get
different addresses and are simply recomputed (``ResultsStore.gc``
reclaims the stale ones).  It defaults to the package version and can
be pinned explicitly or via ``REPRO_CODE_VERSION`` (useful for CI runs
that want one cache per commit: ``REPRO_CODE_VERSION=$GITHUB_SHA``).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

from repro.analysis.fingerprint import canonicalize
from repro.api.scenario import Scenario

#: Environment variable overriding :func:`default_code_version`.
CODE_VERSION_ENV = "REPRO_CODE_VERSION"


def default_code_version() -> str:
    """The code-version token used when none is given explicitly.

    ``REPRO_CODE_VERSION`` wins when set; otherwise the installed
    package version (``repro-<__version__>``).
    """
    override = os.environ.get(CODE_VERSION_ENV)
    if override:
        return override
    from repro import __version__

    return f"repro-{__version__}"


def canonical_scenario_json(scenario: Scenario) -> str:
    """The platform-stable canonical JSON encoding of ``scenario``.

    Round-trip-stable: ``Scenario.from_json(s.to_json())`` canonicalizes
    to the same string as ``s`` itself.
    """
    return json.dumps(canonicalize(scenario.to_dict()), sort_keys=True)


@dataclass(frozen=True)
class JobSpec:
    """One sweep cell's identity: (canonical scenario, seed, code version).

    Attributes:
        scenario_name: the scenario's registry/user name (display only —
            the canonical JSON, not the name, is what is hashed; two
            scenarios that differ only in description still differ in
            canonical form because the description is serialized).
        seed: the master seed the cell runs under.
        code_version: the code-version token (see
            :func:`default_code_version`).
        canonical: canonical JSON of the seed-applied scenario.
        address: sha256 content address over (canonical, seed,
            code_version) — the store key.
    """

    scenario_name: str
    seed: int
    code_version: str
    canonical: str
    address: str

    @classmethod
    def for_cell(
        cls,
        scenario: Scenario,
        seed: int | None = None,
        *,
        code_version: str | None = None,
    ) -> "JobSpec":
        """The spec of ``scenario`` run under ``seed``.

        ``seed=None`` keeps the scenario's own master seed.  The seed is
        folded into the scenario before canonicalization, so the
        canonical form alone pins the cell; the explicit ``seed`` field
        is carried for readability (sidecars, journals, ``store ls``).
        """
        if seed is not None:
            scenario = scenario.with_seed(seed)
        if code_version is None:
            code_version = default_code_version()
        canonical = canonical_scenario_json(scenario)
        address = compute_address(canonical, scenario.seed, code_version)
        return cls(
            scenario_name=scenario.name,
            seed=scenario.seed,
            code_version=code_version,
            canonical=canonical,
            address=address,
        )

    def rebuild_scenario(self) -> Scenario:
        """The scenario this spec identifies, rebuilt from canonical form."""
        return Scenario.from_dict(_decanonicalize(json.loads(self.canonical)))

    def describe(self) -> str:
        return (
            f"{self.scenario_name} seed={self.seed} "
            f"code={self.code_version} addr={self.address[:12]}"
        )


def compute_address(canonical: str, seed: int, code_version: str) -> str:
    """The sha256 content address of one (canonical, seed, version) cell."""
    encoded = json.dumps(
        {
            "canonical": canonical,
            "seed": seed,
            "code_version": code_version,
        },
        sort_keys=True,
    ).encode()
    return hashlib.sha256(encoded).hexdigest()


def _decanonicalize(value):
    """Invert :func:`repro.analysis.fingerprint.canonicalize`.

    The canonical form wraps floats/sets/dicts in tagged objects so
    ordering is deterministic; this unwraps them back into plain JSON
    data that :meth:`Scenario.from_dict` accepts.
    """
    if isinstance(value, dict):
        if "__float__" in value and len(value) == 1:
            return float(value["__float__"])
        if "__set__" in value and len(value) == 1:
            return [_decanonicalize(item) for item in value["__set__"]]
        if "__dict__" in value and len(value) == 1:
            return {
                _decanonicalize(key): _decanonicalize(item)
                for key, item in value["__dict__"]
            }
        return {key: _decanonicalize(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decanonicalize(item) for item in value]
    return value
