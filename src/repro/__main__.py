"""Package entry point: makes ``python -m repro <command>`` work.

Delegates to :func:`repro.cli.main`; ``python -m repro.cli`` remains
supported for existing scripts.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
