"""Supervised execution of forked workers: timeouts, heartbeats,
kill-and-requeue.

:func:`supervise_iter` is the one supervision loop shared by sharded
runs and the pooled sweep backend.  Each task runs in its own forked
child (so a SIGKILL takes out exactly one task, never a shared pool);
the child ships its result back through a pickle file written
atomically, and touches a heartbeat file from a daemon thread while it
works.  The parent polls children against two clocks:

* a **wall-clock deadline** per attempt (``timeout``) — catches tasks
  that run but never finish;
* a **heartbeat staleness** bound (``stale_after``) — catches tasks
  that stop making progress entirely (a hung interpreter stops
  touching its heartbeat; so does an injected hang fault, by design).

A child that dies, times out, or goes silent is killed and the task
requeued up to ``retries`` times.  Because every workload in this
repository is deterministic in (task, seed), re-execution is safe: the
rerun produces bit-identical output, which is what the chaos suite
asserts.

The fault-free overhead is one ``fork`` per task plus a poll loop —
benchmarked in ``benchmarks/bench_faults.py`` and gated at ≤5 % over
the unsupervised pool on the sharded critical path.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.faults.plan import hang_active


@dataclass
class SupervisedOutcome:
    """What happened to one supervised task.

    Attributes:
        index: position of the task in the input sequence.
        result: the worker's return value (``None`` on failure).
        error: ``None`` on success, else a one-line description of the
            *last* failure ("died with SIGKILL", "timed out after
            2.0s", "heartbeat stale ...").
        attempts: executions consumed (1 = first try succeeded).
        elapsed_seconds: wall time from first launch to resolution.
    """

    index: int
    result: object = None
    error: str | None = None
    attempts: int = 1
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


class _Attempt:
    """One running child: process + result/heartbeat paths + clocks."""

    def __init__(
        self,
        index: int,
        attempt: int,
        process,
        result_path: Path,
        heartbeat_path: Path,
        deadline: float | None,
    ) -> None:
        self.index = index
        self.attempt = attempt
        self.process = process
        self.result_path = result_path
        self.heartbeat_path = heartbeat_path
        self.deadline = deadline
        self.started = time.monotonic()


def _child_main(
    worker: Callable,
    task,
    result_path: Path,
    heartbeat_path: Path,
    heartbeat_interval: float,
) -> None:
    """Child-side wrapper: heartbeat thread + worker + atomic result.

    Runs in the forked child.  The heartbeat thread goes silent while
    :func:`~repro.faults.plan.hang_active` reports an injected hang, so
    supervision observes injected hangs exactly as it would a wedged
    interpreter.  All exceptions are contained into the result file —
    the parent decides whether a failure is retryable.
    """
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_interval):
            if hang_active():
                continue
            try:
                os.utime(heartbeat_path)
            except OSError:
                return

    heartbeat_path.touch()
    beat = threading.Thread(target=_beat, daemon=True)
    beat.start()
    try:
        try:
            payload = ("ok", worker(task))
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            payload = ("error", f"{type(exc).__name__}: {exc}")
        tmp = result_path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle)
        os.replace(tmp, result_path)
    finally:
        stop.set()


def supervise_iter(
    worker: Callable,
    tasks: Sequence,
    *,
    jobs: int,
    timeout: float | None = None,
    retries: int = 0,
    heartbeat_interval: float = 0.2,
    stale_after: float | None = None,
    poll_interval: float = 0.02,
    on_event: Callable[[str, int, int, str], None] | None = None,
) -> Iterator[SupervisedOutcome]:
    """Run ``worker(task)`` for every task under supervision, yielding
    :class:`SupervisedOutcome`s as they resolve (not in input order).

    Args:
        worker: picklable callable executed in a forked child.
        tasks: the task sequence; each must be picklable.
        jobs: concurrent children.
        timeout: per-attempt wall-clock limit in seconds; ``None``
            disables the deadline (heartbeats still apply).
        retries: requeues allowed per task after a crash/hang/timeout.
        heartbeat_interval: how often children touch their heartbeat.
        stale_after: kill a child whose heartbeat is older than this;
            ``None`` disables the watchdog.  Must comfortably exceed
            ``heartbeat_interval`` (a 4x margin is a good floor).
        poll_interval: parent poll cadence.
        on_event: optional observer ``(kind, index, attempt, detail)``
            with kind in {"start", "retry", "fail", "done"} — the shard
            coordinator uses it for progress lines.

    The generator owns every child it forks: closing it early (or a
    ``KeyboardInterrupt`` unwinding through it) kills outstanding
    children and removes their scratch files — no orphans.
    """
    ctx = multiprocessing.get_context("fork")
    pending: deque[tuple[int, int]] = deque(
        (index, 1) for index in range(len(tasks))
    )
    first_start: dict[int, float] = {}
    running: list[_Attempt] = []
    notify = on_event or (lambda kind, index, attempt, detail: None)

    with tempfile.TemporaryDirectory(prefix="repro-supervise-") as scratch:
        scratch_dir = Path(scratch)

        def _launch(index: int, attempt: int) -> None:
            result_path = scratch_dir / f"task{index}.a{attempt}.result"
            heartbeat_path = scratch_dir / f"task{index}.a{attempt}.hb"
            process = ctx.Process(
                target=_child_main,
                args=(
                    worker,
                    tasks[index],
                    result_path,
                    heartbeat_path,
                    heartbeat_interval,
                ),
            )
            process.start()
            first_start.setdefault(index, time.monotonic())
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            running.append(
                _Attempt(
                    index,
                    attempt,
                    process,
                    result_path,
                    heartbeat_path,
                    deadline,
                )
            )
            notify("start", index, attempt, "")

        def _resolve(att: _Attempt) -> SupervisedOutcome | None:
            """Outcome/requeue for a finished or condemned attempt."""
            failure: str | None = None
            result = None
            if att.result_path.exists():
                try:
                    with open(att.result_path, "rb") as handle:
                        status, payload = pickle.load(handle)
                except (OSError, pickle.PickleError, EOFError) as exc:
                    failure = f"unreadable result: {exc}"
                else:
                    if status == "ok":
                        result = payload
                    else:
                        failure = payload
            else:
                code = att.process.exitcode
                failure = (
                    f"died with exit code {code}"
                    if code is not None
                    else "died without result"
                )
            elapsed = time.monotonic() - first_start[att.index]
            if failure is None:
                notify("done", att.index, att.attempt, "")
                return SupervisedOutcome(
                    index=att.index,
                    result=result,
                    attempts=att.attempt,
                    elapsed_seconds=elapsed,
                )
            if att.attempt <= retries:
                notify("retry", att.index, att.attempt, failure)
                pending.append((att.index, att.attempt + 1))
                return None
            notify("fail", att.index, att.attempt, failure)
            return SupervisedOutcome(
                index=att.index,
                error=failure,
                attempts=att.attempt,
                elapsed_seconds=elapsed,
            )

        def _condemn(att: _Attempt, reason: str) -> SupervisedOutcome | None:
            att.process.kill()
            att.process.join()
            # A kill can race a completed result write; honour the
            # result if it landed, otherwise record the reason.
            if not att.result_path.exists():
                elapsed = time.monotonic() - first_start[att.index]
                if att.attempt <= retries:
                    notify("retry", att.index, att.attempt, reason)
                    pending.append((att.index, att.attempt + 1))
                    return None
                notify("fail", att.index, att.attempt, reason)
                return SupervisedOutcome(
                    index=att.index,
                    error=reason,
                    attempts=att.attempt,
                    elapsed_seconds=elapsed,
                )
            return _resolve(att)

        try:
            while pending or running:
                while pending and len(running) < jobs:
                    index, attempt = pending.popleft()
                    _launch(index, attempt)
                time.sleep(poll_interval)
                now = time.monotonic()
                still_running: list[_Attempt] = []
                for att in running:
                    if not att.process.is_alive():
                        att.process.join()
                        outcome = _resolve(att)
                        if outcome is not None:
                            yield outcome
                        continue
                    if att.deadline is not None and now > att.deadline:
                        outcome = _condemn(
                            att,
                            f"timed out after {timeout:.6g}s",
                        )
                        if outcome is not None:
                            yield outcome
                        continue
                    if stale_after is not None:
                        try:
                            age = (
                                time.time()
                                - att.heartbeat_path.stat().st_mtime
                            )
                        except OSError:
                            # Not yet touched: measure from launch so a
                            # slow fork gets the same grace.
                            age = now - att.started
                        if age > stale_after:
                            outcome = _condemn(
                                att,
                                "heartbeat stale "
                                f"({age:.2f}s > {stale_after:.6g}s)",
                            )
                            if outcome is not None:
                                yield outcome
                            continue
                    still_running.append(att)
                running[:] = still_running
        finally:
            for att in running:
                if att.process.is_alive():
                    att.process.kill()
                att.process.join()
            running.clear()
