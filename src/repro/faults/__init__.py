"""Deterministic fault injection, retries, and supervised execution.

Three pieces, used together by the chaos suite and independently by
the layers they harden:

* :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultRule`
  (seeded, JSON-lossless fault descriptions), the :func:`fault_site`
  hook the library calls at its failure points, and the ``REPRO_FAULTS``
  environment channel that carries a plan into forked and subprocess
  children.
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (bounded retries,
  exponential backoff, deterministic jitter) and :class:`RetryBudget`,
  shared by sweeps, the live feed, and service IO.
* :mod:`repro.faults.supervise` — :func:`supervise_iter`, the
  fork-per-task supervision loop with wall-clock timeouts, heartbeat
  watchdogs, and kill-and-requeue.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FAULTS_ENV,
    FaultPlan,
    FaultRule,
    active_plan,
    deactivate_faults,
    fault_site,
    hang_active,
    reset_faults,
)
from repro.faults.retry import (
    DEFAULT_IO_RETRY,
    RetryBudget,
    RetryPolicy,
)
from repro.faults.supervise import SupervisedOutcome, supervise_iter

__all__ = [
    "FAULT_KINDS",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "deactivate_faults",
    "fault_site",
    "hang_active",
    "reset_faults",
    "DEFAULT_IO_RETRY",
    "RetryBudget",
    "RetryPolicy",
    "SupervisedOutcome",
    "supervise_iter",
]
