"""Bounded retries with exponential backoff and deterministic jitter.

One policy object is shared by every layer that retries —
:class:`~repro.sweeps.manager.SweepManager` requeues, ``LiveFeed``
HTTP delivery, WAL appends, spill-chunk flushes, checkpoint writes —
so backoff behaviour is uniform and tunable in one place.

Jitter is deterministic: it is drawn from a hash of ``(seed, key,
attempt)`` rather than global RNG state, so a replayed run backs off
identically and retry schedules never perturb simulation RNG streams.
A :class:`RetryBudget` optionally caps *total* retries across many
call sites, turning "retry forever-ish" into "spend at most N
recoveries on this workload, then surface the failure".
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError


def _jitter_draw(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (key, attempt)."""
    digest = hashlib.blake2b(
        f"{seed}:{key}:{attempt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


class RetryBudget:
    """A global cap on retries shared across call sites.

    Each recovery attempt calls :meth:`take`; once the budget is
    spent, callers stop retrying and let the failure surface.  This
    bounds worst-case latency when a fault is persistent rather than
    transient (a full disk fails every retry; burning the whole
    backoff schedule per write just delays the inevitable 503).
    """

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ConfigurationError("retry budget limit must be >= 0")
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        """Consume one retry; False once the budget is exhausted."""
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.spent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RetryBudget(spent={self.spent}, limit={self.limit})"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to wait between tries.

    Attributes:
        attempts: total tries including the first (``attempts=3`` =
            one try plus up to two retries; ``attempts=1`` disables
            retrying).
        base_delay: backoff before the first retry, in seconds.
        multiplier: backoff growth factor per retry.
        max_delay: backoff ceiling, in seconds.
        jitter: fraction of the delay randomised away — the delay for
            retry *k* is ``d_k * (1 - jitter * u)`` with ``u`` drawn
            deterministically from ``(seed, key, k)``.
        seed: jitter stream seed.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigurationError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    # serialization (lossless, for journals and docs)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)

    # ------------------------------------------------------------------
    # schedule
    # ------------------------------------------------------------------
    def delay(self, attempt: int, *, key: str = "") -> float:
        """Backoff before retry ``attempt`` (1 = first retry), jittered
        deterministically by ``key`` so concurrent retriers spread out
        but a replayed run waits identically."""
        if attempt < 1:
            return 0.0
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if self.jitter == 0.0:
            return raw
        return raw * (
            1.0 - self.jitter * _jitter_draw(self.seed, key, attempt)
        )

    def call(
        self,
        fn,
        *,
        retry_on: tuple = (OSError, ConnectionError),
        key: str = "",
        budget: RetryBudget | None = None,
        on_retry=None,
        sleep=time.sleep,
    ):
        """Run ``fn()`` under this policy; the last failure propagates.

        Args:
            fn: zero-argument callable.
            retry_on: exception types worth retrying; anything else
                propagates immediately.
            key: jitter key — use a stable identity for the operation
                (a cell address, a WAL path) so concurrent retriers
                decorrelate.
            budget: optional shared :class:`RetryBudget`; when it is
                exhausted the failure propagates without further tries.
            on_retry: callback ``(attempt, delay_seconds, exc)`` before
                each backoff sleep (journaling, logging).
            sleep: injection point for tests.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as exc:
                attempt += 1
                if attempt >= self.attempts:
                    raise
                if budget is not None and not budget.take():
                    raise
                pause = self.delay(attempt, key=key)
                if on_retry is not None:
                    on_retry(attempt, pause, exc)
                if pause > 0:
                    sleep(pause)


#: Default policy for IO-path retries (WAL, store, spill, checkpoint):
#: three tries, ~50/100 ms backoffs — fast enough not to stall an
#: ingest loop, spaced enough to ride out transient EIO/ENOSPC blips.
DEFAULT_IO_RETRY = RetryPolicy()
