"""Seeded, replayable fault plans and the process-global injector.

A :class:`FaultPlan` is a declarative list of :class:`FaultRule`s, each
naming a **fault site** — a string like ``"shard.worker"`` or
``"wal.append"`` that the library hits via :func:`fault_site` at the
exact points where production deployments fail — and the fault to
inject there: a worker crash, a hang, a failing IO call, a torn write,
or a transient connection error.

Plans are JSON-lossless (``to_dict``/``from_dict``/``to_json``/
``from_json``) and travel to child processes through one environment
variable (:data:`FAULTS_ENV`), so forked shard workers and ``python -m
repro run`` subprocesses inject at the named sites **without any code
changes**: the first :func:`fault_site` call in any process lazily
loads the plan from the environment.

Determinism discipline:

* rule matching is by site name, an exact ``match`` filter over the
  site's context kwargs, and a per-rule matched-hit counter
  (``at_hit``) — all independent of timing and scheduling;
* probabilistic rules draw from a hash of ``(seed, rule, hit)``, never
  from global RNG state, so a replayed plan fires identically;
* cross-process firing budgets (``times``) are enforced through
  ``state_dir``: each firing atomically claims a marker file, so
  "crash the worker once, then let the retry succeed" holds across
  kill-and-requeue — which is exactly what the chaos suite needs to
  prove recovery is fingerprint-identical.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.errors import ConfigurationError, FaultInjectedError

#: Environment variable carrying the active plan to child processes.
#: The value is either the plan's JSON or ``@/path/to/plan.json``.
FAULTS_ENV = "REPRO_FAULTS"

#: Fault kinds a rule may inject.
FAULT_KINDS = ("crash", "hang", "io_error", "torn_write", "http_error")


@dataclass(frozen=True)
class FaultRule:
    """One injectable fault: *where*, *what*, and *when exactly*.

    Attributes:
        site: fault-site name the rule arms (e.g. ``"sweep.cell"``).
        kind: one of :data:`FAULT_KINDS`.
        match: context filter — every key must be present in the
            site's context kwargs with an equal value (``{}`` matches
            every hit).  This is how a rule targets one shard or one
            seed out of a fleet.
        at_hit: fire starting at the Nth *matched* hit in a process
            (1 = the first).
        times: total firings the rule is allowed (across processes
            when the plan has a ``state_dir``, else per process).
            ``times=1`` models "fail once, recover on retry".
        exit_code: crash only — exit with this status instead of
            SIGKILL (``None`` = SIGKILL, the ungraceful default).
        seconds: hang only — how long to sleep (supervision should
            kill the worker long before this elapses).
        cut: torn_write only — fraction of the payload written before
            the process dies (0 < cut < 1).
        probability: chance a matched hit fires, drawn from the plan's
            seeded hash stream (1.0 = always).
    """

    site: str
    kind: str
    match: tuple = ()
    at_hit: int = 1
    times: int = 1
    exit_code: int | None = None
    seconds: float = 3600.0
    cut: float = 0.5
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: "
                + ", ".join(FAULT_KINDS)
            )
        if self.at_hit < 1:
            raise ConfigurationError("at_hit must be >= 1")
        if self.times < 1:
            raise ConfigurationError("times must be >= 1")
        if not 0.0 < self.cut < 1.0:
            raise ConfigurationError("cut must be in (0, 1)")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")
        # Normalise match to a sorted item tuple so rules hash, compare,
        # and serialize canonically regardless of insertion order.
        if isinstance(self.match, Mapping):
            object.__setattr__(
                self, "match", tuple(sorted(self.match.items()))
            )
        else:
            object.__setattr__(
                self, "match", tuple(sorted(tuple(self.match)))
            )

    def matches(self, context: Mapping) -> bool:
        return all(
            key in context and context[key] == value
            for key, value in self.match
        )

    def to_dict(self) -> dict:
        data = {
            "site": self.site,
            "kind": self.kind,
            "match": {key: value for key, value in self.match},
            "at_hit": self.at_hit,
            "times": self.times,
            "seconds": self.seconds,
            "cut": self.cut,
            "probability": self.probability,
        }
        if self.exit_code is not None:
            data["exit_code"] = self.exit_code
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            site=data["site"],
            kind=data["kind"],
            match=dict(data.get("match", {})),
            at_hit=data.get("at_hit", 1),
            times=data.get("times", 1),
            exit_code=data.get("exit_code"),
            seconds=data.get("seconds", 3600.0),
            cut=data.get("cut", 0.5),
            probability=data.get("probability", 1.0),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A replayable set of fault rules plus the seed that drives them.

    Attributes:
        rules: the rules, in arming order (rule index is part of the
            deterministic identity used for budgets and RNG draws).
        seed: drives probabilistic rules; two activations of the same
            plan fire identically.
        state_dir: directory for cross-process firing budgets; when
            set, every firing claims a marker file there atomically,
            so ``times`` bounds firings across a whole supervision
            tree.  ``None`` keeps budgets per process.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    state_dir: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data: dict = {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }
        if self.state_dir is not None:
            data["state_dir"] = self.state_dir
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            rules=tuple(
                FaultRule.from_dict(rule) for rule in data.get("rules", ())
            ),
            seed=data.get("seed", 0),
            state_dir=data.get("state_dir"),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Install this plan as the process-global injector **and**
        export it to :data:`FAULTS_ENV` so child processes inherit it."""
        global _injector, _env_checked
        os.environ[FAULTS_ENV] = self.to_json()
        _injector = _FaultInjector(self)
        _env_checked = True

    def scoped(self) -> "_ScopedPlan":
        """Context manager: activate on enter, fully undo on exit
        (environment and in-process injector restored) — the shape
        every chaos test uses."""
        return _ScopedPlan(self)


class _ScopedPlan:
    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._saved: str | None = None

    def __enter__(self) -> FaultPlan:
        self._saved = os.environ.get(FAULTS_ENV)
        self.plan.activate()
        return self.plan

    def __exit__(self, *exc_info) -> None:
        deactivate_faults()
        if self._saved is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = self._saved


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
def _unit_draw(seed: int, rule_index: int, hit: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (rule, hit)."""
    digest = hashlib.blake2b(
        f"{seed}:{rule_index}:{hit}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


class _FaultInjector:
    """Evaluates the active plan at every fault-site hit."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._by_site: dict[str, list[tuple[int, FaultRule]]] = {}
        for index, rule in enumerate(plan.rules):
            self._by_site.setdefault(rule.site, []).append((index, rule))
        self._matched: dict[int, int] = {}
        self._fired: dict[int, int] = {}

    def hit(self, site: str, context: dict) -> None:
        for index, rule in self._by_site.get(site, ()):
            if not rule.matches(context):
                continue
            hit = self._matched.get(index, 0) + 1
            self._matched[index] = hit
            if hit < rule.at_hit:
                continue
            if (
                rule.probability < 1.0
                and _unit_draw(self.plan.seed, index, hit)
                >= rule.probability
            ):
                continue
            if not self._claim(index, rule):
                continue
            self._fire(rule, site, context)

    def _claim(self, index: int, rule: FaultRule) -> bool:
        """Take one firing from the rule's budget; False = exhausted."""
        if self.plan.state_dir is None:
            fired = self._fired.get(index, 0)
            if fired >= rule.times:
                return False
            self._fired[index] = fired + 1
            return True
        state = Path(self.plan.state_dir)
        state.mkdir(parents=True, exist_ok=True)
        for firing in range(rule.times):
            marker = state / f"rule{index}.fire{firing}"
            try:
                fd = os.open(
                    marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue
            os.write(fd, f"pid={os.getpid()}\n".encode())
            os.close(fd)
            return True
        return False

    def _fire(self, rule: FaultRule, site: str, context: dict) -> None:
        if rule.kind == "io_error":
            raise OSError(
                errno.EIO, f"injected IO fault at {site}"
            )
        if rule.kind == "http_error":
            raise ConnectionError(
                f"injected transient connection failure at {site}"
            )
        if rule.kind == "hang":
            global _hanging
            _hanging = True
            try:
                time.sleep(rule.seconds)
            finally:
                _hanging = False
            return
        if rule.kind == "torn_write":
            self._torn_write(rule, site, context)
            return
        # crash: die the way real workers die — no cleanup, no
        # handlers.  SIGKILL by default; exit_code models exit-N.
        if rule.exit_code is not None:
            os._exit(rule.exit_code)
        os.kill(os.getpid(), signal.SIGKILL)

    @staticmethod
    def _torn_write(rule: FaultRule, site: str, context: dict) -> None:
        """Write a prefix of the payload the site was about to write,
        force it to disk, and die — the crash-mid-write failure the
        torn-tail recovery paths must survive.

        The site supplies ``path`` plus either ``data`` (bytes) or
        ``record`` (a dict serialized exactly as the WAL would).
        """
        path = context.get("path")
        data = context.get("data")
        if data is None and "record" in context:
            data = (
                json.dumps(context["record"], sort_keys=True) + "\n"
            ).encode()
        if path is None or data is None:
            raise FaultInjectedError(
                f"torn_write at {site} needs 'path' and 'data' or "
                "'record' in the site context"
            )
        cut = max(1, int(len(data) * rule.cut))
        fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND)
        try:
            os.write(fd, data[:cut])
            os.fsync(fd)
        finally:
            os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)


#: Module state: the active injector, whether the environment has been
#: consulted, and whether a hang fault is currently sleeping (used by
#: supervision heartbeats to go silent, exactly as a wedged process
#: would).
_injector: _FaultInjector | None = None
_env_checked = False
_hanging = False


def fault_site(site: str, **context) -> None:
    """Declare a fault site; injects when the active plan arms it.

    The fault-free fast path is one global load and a ``None`` check —
    cheap enough for hot paths like WAL appends and spill flushes.
    """
    if _injector is None:
        if _env_checked or FAULTS_ENV not in os.environ:
            return
        _load_from_env()
        if _injector is None:
            return
    _injector.hit(site, context)


def _load_from_env() -> None:
    global _injector, _env_checked
    _env_checked = True
    payload = os.environ.get(FAULTS_ENV, "")
    if not payload:
        return
    if payload.startswith("@"):
        payload = Path(payload[1:]).read_text()
    _injector = _FaultInjector(FaultPlan.from_json(payload))


def active_plan() -> FaultPlan | None:
    """The plan currently installed in this process, if any."""
    if _injector is None and not _env_checked:
        _load_from_env()
    return _injector.plan if _injector is not None else None


def deactivate_faults() -> None:
    """Remove the in-process injector and stop consulting the
    environment (until a new plan is activated)."""
    global _injector, _env_checked
    _injector = None
    _env_checked = True


def reset_faults() -> None:
    """Forget everything, including the environment check — the next
    :func:`fault_site` call re-reads :data:`FAULTS_ENV` (what a forked
    child effectively does on its first hit)."""
    global _injector, _env_checked, _hanging
    _injector = None
    _env_checked = False
    _hanging = False


def hang_active() -> bool:
    """True while an injected hang fault is sleeping in this process.

    Supervision heartbeat threads consult this to stop touching their
    heartbeat file during a hang, so an injected hang is observably
    identical to a genuinely wedged worker."""
    return _hanging
