"""Command-line interface: run the measurement and report the results.

Usage::

    python -m repro.cli run --seed 2016 --out results/
    python -m repro.cli run --paper-cadence     # 10-minute script scans
    python -m repro.cli tables --seed 2016      # print Table 2 + taxonomy
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.dataset import analyze
from repro.analysis.export import export_results
from repro.analysis.report import (
    format_table2,
    format_taxonomy_summary,
    overview,
    significance_tests,
)
from repro.core.experiment import Experiment, ExperimentConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'What Happens After You Are Pwnd' (IMC 2016) on "
            "the simulated honey-account ecosystem."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run the full measurement and print the overview"
    )
    tables_parser = subparsers.add_parser(
        "tables", help="run and print Table 2 + the taxonomy summary"
    )
    for sub in (run_parser, tables_parser):
        sub.add_argument(
            "--seed", type=int, default=2016,
            help="master seed (default: 2016)",
        )
        sub.add_argument(
            "--paper-cadence", action="store_true",
            help="use the paper's 10-minute script scans (slower)",
        )
    run_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="export results.json and figure CSVs into DIR",
    )
    return parser


def _run_experiment(args):
    config = (
        ExperimentConfig(master_seed=args.seed)
        if args.paper_cadence
        else ExperimentConfig.fast(master_seed=args.seed)
    )
    started = time.time()
    result = Experiment(config).run()
    elapsed = time.time() - started
    analysis = analyze(result.dataset, scan_period=config.scan_period)
    return result, analysis, elapsed


def _command_run(args) -> int:
    result, analysis, elapsed = _run_experiment(args)
    stats = overview(analysis, result.blacklisted_ips)
    print(f"measurement complete in {elapsed:.1f}s "
          f"(seed={args.seed}, {result.events_executed} events)")
    print(f"unique accesses: {stats.unique_accesses} (paper: 327)")
    print(f"emails read/sent/drafts: {stats.emails_read}/"
          f"{stats.emails_sent}/{stats.unique_drafts} "
          f"(paper: 147/845/12)")
    print(f"blocked accounts: {stats.blocked_accounts} (paper: 42)")
    print(f"labels: {stats.label_totals}")
    tests = significance_tests(analysis)
    for name, p_value in tests.summary().items():
        print(f"cvm {name}: p={p_value:.7f}")
    if args.out:
        written = export_results(
            analysis, args.out, blacklisted_ips=result.blacklisted_ips
        )
        print(f"exported {len(written)} files to {args.out}")
    return 0


def _command_tables(args) -> int:
    _, analysis, _ = _run_experiment(args)
    print(format_taxonomy_summary(analysis))
    print()
    print(format_table2(analysis))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    return _command_tables(args)


if __name__ == "__main__":
    sys.exit(main())
