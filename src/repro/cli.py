"""Command-line interface: run scenarios, sweep seeds, compare results.

Usage::

    python -m repro run --seed 2016 --out results/
    python -m repro run --scenario paste_only --seed 7
    python -m repro run --persona-mix 'curious=0.5,stuffing_bot=0.5'
    python -m repro run --checkpoint-every 30 --checkpoint-dir ckpt/
    python -m repro run --resume-from ckpt/checkpoint_day_30.pkl
    python -m repro serve --wal events.wal --checkpoint service.ckpt
    python -m repro serve --scenario fast --shutdown-after-feed
    python -m repro tables --seed 2016 --out results/
    python -m repro scenarios                 # list the registry
    python -m repro scenarios paste_only      # describe one entry
    python -m repro personas                  # list attacker personas
    python -m repro personas lurker           # describe one persona
    python -m repro defenses                  # list defender mechanisms
    python -m repro defenses c3               # describe one defense
    python -m repro run --scenario c3_defended --seed 7
    python -m repro run --defenses 'c3,reset_policy' --seed 7
    python -m repro sweep --seeds 2016..2018 --jobs 2
    python -m repro sweep --store results-store --seeds 2016..2023
    python -m repro sweep --store results-store --resume --backend pool
    python -m repro store ls --store results-store
    python -m repro compare --scenarios fast,no_case_studies --seeds 1..2

``--persona-mix`` accepts a compact ``name=weight`` spec (combos join
with ``+``, applied to every outlet of the plan), inline JSON, or a
path to a ``PersonaMix`` JSON file.

``--defenses`` accepts comma-separated registered defense names (each
with its default parameters), inline JSON (a list of defense specs),
or a path to a JSON file of specs; it replaces the scenario's defense
list.  ``--defenses ''`` strips all defenses from a defended scenario.

``sweep --store DIR`` turns a one-shot sweep into a persistent,
memoized campaign (:mod:`repro.sweeps`): completed (scenario, seed,
code-version) cells are stored content-addressed under ``DIR`` and
skipped on re-launch (``--resume``), with every state transition
journaled to ``DIR/journal.jsonl``.  ``store ls``/``verify``/``gc``
inspect and maintain the store.

``python -m repro.cli ...`` keeps working for older scripts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.export import export_results
from repro.analysis.report import (
    format_persona_report,
    format_table2,
    format_taxonomy_summary,
)
from repro.api.envelope import run_scenario
from repro.api.registry import scenarios
from repro.api.runner import BatchRunner
from repro.api.scenario import Scenario
from repro.attackers.personas import PersonaMix, personas
from repro.defenses import Defense, defenses, defenses_from_specs
from repro.errors import ConfigurationError, ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'What Happens After You Are Pwnd' (IMC 2016) on "
            "the simulated honey-account ecosystem."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run one measurement and print the overview"
    )
    tables_parser = subparsers.add_parser(
        "tables", help="run and print Table 2 + the taxonomy summary"
    )
    for sub in (run_parser, tables_parser):
        sub.add_argument(
            "--seed", type=int, default=2016,
            help="master seed (default: 2016)",
        )
        sub.add_argument(
            "--scenario", default=None, metavar="NAME",
            help="registry scenario to run (default: fast)",
        )
        sub.add_argument(
            "--paper-cadence", action="store_true",
            help="use the paper's 10-minute script scans (slower); "
            "shorthand for --scenario paper_default",
        )
        sub.add_argument(
            "--duration-days", type=float, default=None, metavar="DAYS",
            help="override the measurement window length",
        )
        sub.add_argument(
            "--out", default=None, metavar="DIR",
            help="export results.json and figure CSVs into DIR",
        )
        sub.add_argument(
            "--persona-mix", default=None, metavar="SPEC",
            dest="persona_mix",
            help="override the attacker persona mix: 'name=w,name2+name3=w2' "
            "(applied to every outlet), inline JSON, or a JSON file path",
        )
        sub.add_argument(
            "--defenses", default=None, metavar="SPEC",
            dest="defenses",
            help="replace the scenario's defender stack: comma-separated "
            "defense names ('c3,reset_policy'), inline JSON (a list of "
            "defense specs), a JSON file path, or '' to strip defenses",
        )
    run_parser.add_argument(
        "--telemetry-out", default=None, metavar="DIR",
        help="export raw telemetry (accesses.jsonl, notifications.jsonl, "
        "dataset.json) into DIR after the run",
    )
    run_parser.add_argument(
        "--spill-telemetry", default=None, metavar="DIR",
        help="stream accesses/notifications to JSONL in DIR *during* the "
        "run (for measurements too large to keep resident)",
    )
    run_parser.add_argument(
        "--telemetry-budget", type=float, default=None, metavar="MB",
        dest="telemetry_budget",
        help="cap resident telemetry at MB megabytes: stores that "
        "would exceed it write chunked columns to disk during the run "
        "and the analysis streams them back (bit-identical results; "
        "0 spills everything)",
    )
    run_parser.add_argument(
        "--spill-dir", default=None, metavar="DIR", dest="spill_dir",
        help="directory for spilled telemetry chunks (default: a "
        "temporary directory; implies --telemetry-budget 0 when given "
        "alone)",
    )
    run_parser.add_argument(
        "--profile", default=None, metavar="FILE", dest="profile",
        help="dump a cProfile capture of the simulation loop to FILE "
        "(pstats format; inspect with 'python -m pstats FILE')",
    )
    run_parser.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="partition the account population across K worker "
        "processes (bit-identical analysis; default: the scenario's "
        "own shard count, usually 1)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for a sharded run (default: "
        "min(shards, cpu count); 1 = run shards sequentially "
        "in-process)",
    )
    run_parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        dest="shard_timeout",
        help="wall-clock limit per shard worker attempt; a shard past "
        "it is killed and re-executed (deterministic, so the rerun is "
        "bit-identical; default: no limit)",
    )
    run_parser.add_argument(
        "--shard-retries", type=int, default=1, metavar="N",
        dest="shard_retries",
        help="re-executions allowed per crashed/hung/timed-out shard "
        "before the run fails (default: 1)",
    )
    run_parser.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        dest="fault_plan",
        help="activate the fault-injection plan in FILE (FaultPlan "
        "JSON) for this run and its workers — chaos testing the "
        "supervision paths",
    )
    run_parser.add_argument(
        "--scenario-file", default=None, metavar="FILE",
        dest="scenario_file",
        help="run the scenario serialized in FILE (Scenario JSON) "
        "instead of a registry entry — how the sweep subprocess "
        "backend dispatches cells",
    )
    run_parser.add_argument(
        "--result-out", default=None, metavar="FILE", dest="result_out",
        help="pickle the RunResult envelope to FILE after the run "
        "(readable with pickle.load; used by the sweep subprocess "
        "backend to ship results back)",
    )
    run_parser.add_argument(
        "--fingerprint", action="store_true",
        help="print the sha256 fingerprint of the analysis output "
        "(canonical form; equal fingerprints mean field-for-field "
        "equal results — the sharded-equivalence smoke check in CI "
        "compares these)",
    )
    run_parser.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="DAYS",
        dest="checkpoint_every",
        help="snapshot the whole mid-horizon simulation every DAYS "
        "simulated days; a snapshot resumes with --resume-from and "
        "finishes bit-identical to the uninterrupted run",
    )
    run_parser.add_argument(
        "--checkpoint-dir", default="checkpoints", metavar="DIR",
        dest="checkpoint_dir",
        help="directory for --checkpoint-every snapshots "
        "(default: checkpoints/)",
    )
    run_parser.add_argument(
        "--resume-from", default=None, metavar="FILE",
        dest="resume_from",
        help="resume a --checkpoint-every snapshot to its horizon "
        "instead of starting a new run",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the live ingestion API (online classification, "
        "/stats dashboard, write-ahead log, checkpoint on shutdown)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="bind port (default: 0 = pick a free one; the chosen "
        "port is printed as 'serving on http://HOST:PORT')",
    )
    serve_parser.add_argument(
        "--wal", default=None, metavar="FILE",
        help="write-ahead log: every accepted event is journaled to "
        "FILE before it mutates state; an existing FILE is replayed "
        "on startup and appended to",
    )
    serve_parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="service checkpoint: loaded (with the WAL tail past it) "
        "on startup, rewritten on graceful shutdown",
    )
    serve_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="also run this registry scenario and stream its "
        "telemetry into the service over its own HTTP API "
        "(default: serve only, wait for an external feed)",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=2016,
        help="master seed for --scenario (default: 2016)",
    )
    serve_parser.add_argument(
        "--duration-days", type=float, default=None, metavar="DAYS",
        help="override the --scenario measurement window length",
    )
    serve_parser.add_argument(
        "--feed-batch", type=int, default=256, metavar="N",
        dest="feed_batch",
        help="events per --scenario feed POST (default: 256)",
    )
    serve_parser.add_argument(
        "--shutdown-after-feed", action="store_true",
        dest="shutdown_after_feed",
        help="gracefully shut down once the --scenario feed "
        "completes (the CI smoke mode)",
    )
    serve_parser.add_argument(
        "--degraded-ok", action="store_true", dest="degraded_ok",
        help="keep /healthz answering 200 while the WAL is unwritable "
        "(ingest still answers 503 + degraded flag; default: "
        "/healthz answers 503 when degraded)",
    )

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list registry scenarios, or describe one"
    )
    scenarios_parser.add_argument(
        "name", nargs="?", default=None,
        help="scenario to describe (omit to list all)",
    )
    scenarios_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the scenario's full JSON definition",
    )

    personas_parser = subparsers.add_parser(
        "personas", help="list registered attacker personas, or describe one"
    )
    personas_parser.add_argument(
        "name", nargs="?", default=None,
        help="persona to describe (omit to list all)",
    )

    defenses_parser = subparsers.add_parser(
        "defenses",
        help="list registered defender mechanisms, or describe one",
    )
    defenses_parser.add_argument(
        "name", nargs="?", default=None,
        help="defense to describe (omit to list all)",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run one scenario across many seeds"
    )
    compare_parser = subparsers.add_parser(
        "compare", help="run several scenarios and compare aggregates"
    )
    for sub in (sweep_parser, compare_parser):
        sub.add_argument(
            "--seeds", default="2016..2018", metavar="SPEC",
            help="seed spec: 'A..B' (inclusive), 'a,b,c', or one seed "
            "(default: 2016..2018)",
        )
        sub.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes (default: 1 = serial)",
        )
        sub.add_argument(
            "--duration-days", type=float, default=None, metavar="DAYS",
            help="override the measurement window length",
        )
        sub.add_argument(
            "--out", default=None, metavar="DIR",
            help="write the batch summary JSON into DIR",
        )
    sweep_parser.add_argument(
        "--scenario", default="fast", metavar="NAME[,NAME...]",
        help="registry scenario(s) to sweep, comma-separated "
        "(default: fast)",
    )
    sweep_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="memoize (scenario, seed, code-version) cells in a "
        "content-addressed results store under DIR; already-stored "
        "cells are skipped",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="continue a sweep journaled in --store (required to run "
        "against a store that already has a journal)",
    )
    sweep_parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="extra attempts per failed cell before it is reported "
        "failed (default: 1; store mode only)",
    )
    sweep_parser.add_argument(
        "--backend", default=None,
        choices=["inprocess", "pool", "subprocess"],
        help="dispatch backend for store-mode sweeps (default: pool "
        "when --jobs > 1, else inprocess)",
    )
    sweep_parser.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        dest="max_cells",
        help="execute at most N uncached cells this invocation, "
        "deferring the rest (store mode only; resume later with "
        "--resume)",
    )
    sweep_parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        dest="cell_timeout",
        help="wall-clock limit per cell attempt on the pool/subprocess "
        "backends; a cell past it is killed, reported failed, and "
        "requeued under --retries (default: no limit)",
    )

    store_parser = subparsers.add_parser(
        "store",
        help="inspect or maintain a memoized sweep results store",
    )
    store_parser.add_argument(
        "action", choices=["ls", "verify", "gc"],
        help="ls: list entries; verify: integrity-check payloads and "
        "addresses; gc: drop entries from other code versions plus "
        "interrupted writes",
    )
    store_parser.add_argument(
        "--store", required=True, metavar="DIR",
        help="the results store directory",
    )
    store_parser.add_argument(
        "--keep-version", default=None, metavar="TOKEN",
        dest="keep_version",
        help="gc: code-version token to keep (default: the current "
        "code version)",
    )
    store_parser.add_argument(
        "--quarantine", action="store_true",
        help="verify: move corrupt/uncommitted entries to "
        "<store>/quarantine/ instead of only reporting them, so "
        "'sweep --resume' recomputes those cells",
    )
    compare_parser.add_argument(
        "--scenarios", default="fast,no_case_studies", metavar="A,B,...",
        dest="scenario_names",
        help="comma-separated registry scenarios "
        "(default: fast,no_case_studies)",
    )
    return parser


def parse_seed_spec(spec: str) -> list[int]:
    """Parse 'A..B' (inclusive range), 'a,b,c', or a single seed."""
    spec = spec.strip()
    try:
        if ".." in spec:
            low_text, high_text = spec.split("..", 1)
            low, high = int(low_text), int(high_text)
            if high < low:
                raise ConfigurationError(
                    f"seed range {spec!r} is empty (end before start)"
                )
            return list(range(low, high + 1))
        if "," in spec:
            return [int(part) for part in spec.split(",") if part.strip()]
        return [int(spec)]
    except ValueError as exc:
        raise ConfigurationError(f"bad seed spec {spec!r}: {exc}") from exc


def _apply_duration(scenario: Scenario, duration_days: float | None) -> Scenario:
    if duration_days is None:
        return scenario
    return (
        scenario.to_builder().with_duration_days(duration_days).build()
    )


def parse_persona_mix_spec(spec: str, scenario: Scenario) -> PersonaMix:
    """Parse a ``--persona-mix`` value.

    Three forms: a path to a JSON file, inline JSON (starts with
    ``{``), or the compact ``name=weight,combo+parts=weight`` table
    applied to every outlet the scenario's leak plan uses.  Unknown
    persona names raise :class:`~repro.errors.ConfigurationError`
    listing the registered ones.
    """
    text = spec.strip()
    if text.startswith("{"):
        try:
            return PersonaMix.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"bad persona mix JSON: {exc}"
            ) from exc
    if text.endswith(".json") or Path(text).is_file():
        try:
            payload = json.loads(Path(text).read_text())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read persona mix file {text!r}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"bad persona mix JSON in {text!r}: {exc}"
            ) from exc
        return PersonaMix.from_dict(payload)
    rows = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        combo_text, separator, weight_text = part.partition("=")
        if not separator:
            raise ConfigurationError(
                f"bad persona mix entry {part!r}: expected name=weight"
            )
        combo = tuple(
            name.strip() for name in combo_text.split("+") if name.strip()
        )
        try:
            weight = float(weight_text)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad persona mix weight in {part!r}: {exc}"
            ) from exc
        rows.append((combo, weight))
    if not rows:
        raise ConfigurationError(f"empty persona mix spec {spec!r}")
    return PersonaMix.from_table(
        {outlet: rows for outlet in scenario.outlets}
    ).validate()


def parse_defenses_spec(spec: str) -> tuple[Defense, ...]:
    """Parse a ``--defenses`` value into configured defense instances.

    Four forms: the empty string (strip all defenses), inline JSON
    starting with ``[`` (a list of defense specs, each a name string or
    a ``{"name": ..., <param>: ...}`` dict), a path to a JSON file
    holding such a list, or comma-separated registered names (each
    instantiated with its default parameters).  Unknown names and
    unknown parameters raise :class:`~repro.errors.ConfigurationError`
    listing the known ones.
    """
    text = spec.strip()
    if not text:
        return ()
    if text.startswith("["):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"bad defenses JSON: {exc}") from exc
        return defenses_from_specs(payload)
    if text.endswith(".json") or Path(text).is_file():
        try:
            payload = json.loads(Path(text).read_text())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read defenses file {text!r}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"bad defenses JSON in {text!r}: {exc}"
            ) from exc
        return defenses_from_specs(payload)
    names = [name.strip() for name in text.split(",") if name.strip()]
    return defenses_from_specs(names)


def _resolve_scenario(args) -> Scenario:
    """The scenario a run/tables invocation asks for, seed applied."""
    scenario_file = getattr(args, "scenario_file", None)
    if scenario_file is not None:
        if args.scenario is not None or args.paper_cadence:
            raise ConfigurationError(
                "--scenario-file cannot be combined with --scenario "
                "or --paper-cadence (the file already is the scenario)"
            )
        try:
            payload = Path(scenario_file).read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read scenario file {scenario_file!r}: {exc}"
            ) from exc
        base = Scenario.from_json(payload)
    else:
        name = args.scenario
        if name is None:
            name = "paper_default" if args.paper_cadence else "fast"
        elif args.paper_cadence:
            raise ConfigurationError(
                "--paper-cadence cannot be combined with --scenario "
                "(the scenario already fixes the cadence)"
            )
        base = scenarios.get(name)
    scenario = _apply_duration(
        base.with_seed(args.seed), args.duration_days
    )
    if getattr(args, "persona_mix", None):
        mix = parse_persona_mix_spec(args.persona_mix, scenario)
        scenario = scenario.to_builder().with_personas(mix).build()
    if getattr(args, "defenses", None) is not None:
        scenario = scenario.with_defenses(
            *parse_defenses_spec(args.defenses)
        )
    return scenario


def _command_run(args) -> int:
    if getattr(args, "fault_plan", None):
        from repro.faults import FaultPlan

        FaultPlan.from_json(Path(args.fault_plan).read_text()).activate()
    if args.resume_from is not None:
        return _run_resumed(args)
    if args.checkpoint_every is not None:
        return _run_checkpointed(args)
    scenario = _resolve_scenario(args)
    if args.shards is not None:
        if args.shards > 1 and (args.spill_telemetry or args.profile):
            raise ConfigurationError(
                "--shards cannot be combined with --spill-telemetry or "
                "--profile (both instrument one in-process world)"
            )
        scenario = scenario.with_shards(args.shards)
    spilled: list = []
    monitors: list = []

    def _attach_spill(experiment) -> None:
        monitors.append(experiment.monitor)
        spilled.extend(
            experiment.monitor.spill_telemetry(args.spill_telemetry)
        )

    budget = None
    if (
        getattr(args, "telemetry_budget", None) is not None
        or getattr(args, "spill_dir", None)
    ):
        from repro.telemetry import TelemetryBudget

        if args.telemetry_budget is None:
            budget = TelemetryBudget.spill_all(spill_dir=args.spill_dir)
        else:
            budget = TelemetryBudget(
                max_resident_mb=args.telemetry_budget,
                spill_dir=args.spill_dir,
            )
    run = run_scenario(
        scenario,
        on_built=_attach_spill if args.spill_telemetry else None,
        profile_path=args.profile,
        jobs=args.jobs,
        telemetry_budget=budget,
        shard_timeout=args.shard_timeout,
        shard_retries=args.shard_retries,
    )
    for monitor in monitors:
        monitor.close_spill()
    return _report_run(run, args, spilled=spilled)


def _run_checkpointed(args) -> int:
    """``run --checkpoint-every DAYS``: snapshot the simulation as it
    advances; every snapshot resumes with ``--resume-from``."""
    from repro.service import run_with_checkpoints

    incompatible = [
        flag
        for flag, value in (
            ("--shards", args.shards),
            ("--jobs", args.jobs),
            ("--spill-telemetry", args.spill_telemetry),
            ("--telemetry-budget", args.telemetry_budget),
            ("--spill-dir", args.spill_dir),
            ("--profile", args.profile),
            ("--shard-timeout", args.shard_timeout),
        )
        if value is not None
    ]
    if incompatible:
        raise ConfigurationError(
            "--checkpoint-every snapshots one in-process world; it "
            f"cannot be combined with {', '.join(incompatible)}"
        )
    scenario = _resolve_scenario(args)
    run, paths = run_with_checkpoints(
        scenario,
        every_days=args.checkpoint_every,
        directory=args.checkpoint_dir,
    )
    for path in paths:
        print(f"wrote checkpoint: {path}")
    return _report_run(run, args)


def _run_resumed(args) -> int:
    """``run --resume-from FILE``: finish a checkpointed run."""
    from repro.service import resume_run

    incompatible = [
        flag
        for flag, value in (
            ("--scenario", args.scenario),
            ("--scenario-file", args.scenario_file),
            ("--paper-cadence", args.paper_cadence or None),
            ("--persona-mix", args.persona_mix),
            ("--duration-days", args.duration_days),
            ("--checkpoint-every", args.checkpoint_every),
            ("--shards", args.shards),
            ("--jobs", args.jobs),
            ("--spill-telemetry", args.spill_telemetry),
            ("--telemetry-budget", args.telemetry_budget),
            ("--spill-dir", args.spill_dir),
            ("--profile", args.profile),
            ("--shard-timeout", args.shard_timeout),
        )
        if value is not None
    ]
    if incompatible:
        raise ConfigurationError(
            "--resume-from continues the checkpointed run as it was "
            f"configured; it cannot be combined with "
            f"{', '.join(incompatible)}"
        )
    run = resume_run(args.resume_from)
    print(f"resumed from checkpoint: {args.resume_from}")
    return _report_run(run, args)


def _report_run(run, args, *, spilled: list | None = None) -> int:
    stats = run.overview()
    print(f"measurement complete in {run.elapsed_seconds:.1f}s "
          f"(scenario={run.scenario.name}, seed={run.seed}, "
          f"{run.events_executed} events, "
          f"{run.events_per_second:,.0f} events/s)")
    if run.shard_perf:
        slowest = max(
            s["elapsed_seconds"] for s in run.shard_perf
        )
        print(
            f"sharded across {len(run.shard_perf)} workers: "
            f"slowest shard {slowest:.1f}s, merge "
            f"{run.perf.get('merge', 0.0):.2f}s, per-shard accounts "
            f"{[s['owned_accounts'] for s in run.shard_perf]}"
        )
    if args.fingerprint:
        from repro.analysis.fingerprint import fingerprint_digest

        print(f"analysis fingerprint: {fingerprint_digest(run.analysis)}")
    if args.profile:
        print(f"wrote simulation-loop profile: {args.profile}")
    print(f"unique accesses: {stats.unique_accesses} (paper: 327)")
    print(f"emails read/sent/drafts: {stats.emails_read}/"
          f"{stats.emails_sent}/{stats.unique_drafts} "
          "(paper: 147/845/12)")
    print(f"blocked accounts: {stats.blocked_accounts} (paper: 42)")
    print(f"labels: {stats.label_totals}")
    for name, p_value in run.significance().items():
        print(f"cvm {name}: p={p_value:.7f}")
    if run.analysis.persona_report.matched_accesses:
        print(format_persona_report(run.analysis))
    if run.scenario.defenses:
        print("defense report:")
        for line in run.defense_report().describe().splitlines():
            print(f"  {line}")
    if args.out:
        written = export_results(
            run.analysis, args.out, blacklisted_ips=run.blacklisted_ips
        )
        print(f"exported {len(written)} files to {args.out}")
    if spilled:
        for path in spilled:
            print(f"spilled telemetry stream: {path}")
    if args.telemetry_out:
        written = run.export_telemetry(args.telemetry_out)
        print(f"exported telemetry ({len(written)} files) "
              f"to {args.telemetry_out}")
    if args.result_out:
        import pickle

        result_path = Path(args.result_out)
        result_path.parent.mkdir(parents=True, exist_ok=True)
        with result_path.open("wb") as handle:
            pickle.dump(run, handle, protocol=pickle.HIGHEST_PROTOCOL)
        print(f"wrote result envelope: {result_path}")
    return 0


def _command_tables(args) -> int:
    run = _resolve_scenario(args).run()
    print(format_taxonomy_summary(run.analysis))
    print()
    print(format_table2(run.analysis))
    if args.out:
        written = export_results(
            run.analysis, args.out, blacklisted_ips=run.blacklisted_ips
        )
        print(f"\nexported {len(written)} files to {args.out}")
    return 0


def _command_serve(args) -> int:
    """Run the live ingestion service, optionally self-fed.

    With ``--scenario`` the named scenario runs in a feeder thread and
    streams its telemetry through the service's own public HTTP API —
    the same path an external deployment would use; the scenario name
    resolves through the registry, so an unknown name exits 2 listing
    the known ones before the socket ever binds.
    """
    import threading

    from repro.errors import ServiceError
    from repro.service import (
        LiveFeed,
        ReproService,
        restore_service_state,
        run_service,
    )

    scenario = None
    if args.scenario is not None:
        scenario = _apply_duration(
            scenarios.get(args.scenario).with_seed(args.seed),
            args.duration_days,
        )
    state = restore_service_state(args.wal, args.checkpoint)
    if state.classifier.events_ingested:
        print(f"restored {state.classifier.events_ingested} events "
              f"(WAL position "
              f"{state.wal.position if state.wal else 0})")
    service = ReproService(
        state,
        host=args.host,
        port=args.port,
        checkpoint_path=args.checkpoint,
        degraded_ok=args.degraded_ok,
    )
    feed_errors: list[BaseException] = []

    def _feed(url: str) -> None:
        try:
            feed = LiveFeed.over_http(
                url + "/events", batch_size=args.feed_batch
            )
            run_scenario(
                scenario, on_built=lambda exp: feed.attach(exp)
            )
            feed.close()
            print(f"feed complete: {feed.events_sent} events in "
                  f"{feed.batches_sent} batches", flush=True)
        except BaseException as exc:  # reported after shutdown
            feed_errors.append(exc)
        finally:
            if args.shutdown_after_feed or feed_errors:
                service.request_shutdown()

    def announce(line: str) -> None:
        print(line, flush=True)
        if scenario is not None:
            url = line.split("serving on ", 1)[1]
            threading.Thread(
                target=_feed, args=(url,), daemon=True
            ).start()

    run_service(service, announce=announce)
    if feed_errors:
        raise ServiceError(f"scenario feed failed: {feed_errors[0]}")
    return 0


def _command_scenarios(args) -> int:
    if args.name is None:
        width = max(len(name) for name in scenarios.names())
        for entry in scenarios:
            print(f"{entry.name:<{width}}  {entry.summary}")
        return 0
    scenario = scenarios.get(args.name)
    if args.as_json:
        print(scenario.to_json(indent=2))
    else:
        print(scenario.describe())
    return 0


def _command_personas(args) -> int:
    if args.name is None:
        width = max(len(name) for name in personas.names())
        for persona in personas:
            print(f"{persona.name:<{width}}  {persona.summary}")
        return 0
    print(personas.get(args.name).describe())
    return 0


def _command_defenses(args) -> int:
    if args.name is None:
        width = max(len(name) for name in defenses.names())
        for defense_cls in defenses:
            print(f"{defense_cls.name:<{width}}  {defense_cls.summary}")
        return 0
    print(defenses.get(args.name)().describe())
    return 0


def _write_batch_summary(batch, out_dir: str) -> Path:
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "batch_summary.json"
    path.write_text(
        json.dumps(batch.to_dict(), indent=2, sort_keys=True)
    )
    return path


def _print_batch(batch, args) -> None:
    for run in batch.runs:
        stats = run.overview()
        print(f"  {run.scenario.name} seed={run.seed}: "
              f"accesses={stats.unique_accesses} "
              f"read={stats.emails_read} sent={stats.emails_sent} "
              f"blocked={stats.blocked_accounts}")
    for failure in batch.failures:
        print(f"  {failure.scenario_name} seed={failure.seed}: "
              f"FAILED ({failure.error})", file=sys.stderr)
    for aggregate in batch.aggregates.values():
        print(aggregate.format())
    if args.out:
        path = _write_batch_summary(batch, args.out)
        print(f"wrote {path}")


def _command_sweep(args) -> int:
    seeds = parse_seed_spec(args.seeds)
    names = [n.strip() for n in args.scenario.split(",") if n.strip()]
    if not names:
        raise ConfigurationError(f"empty scenario list {args.scenario!r}")
    scenario_list = [
        _apply_duration(scenarios.get(name), args.duration_days)
        for name in names
    ]
    if args.store is None:
        if args.resume or args.max_cells is not None or args.backend:
            raise ConfigurationError(
                "--resume/--max-cells/--backend need a persistent "
                "store; add --store DIR"
            )
        started = time.time()
        batch = BatchRunner(jobs=args.jobs).run_matrix(
            scenario_list, seeds
        )
        elapsed = time.time() - started
        print(f"swept {', '.join(names)} over {len(seeds)} seeds "
              f"in {elapsed:.1f}s (jobs={args.jobs})")
        _print_batch(batch, args)
        return 1 if batch.failures else 0
    return _sweep_with_store(args, scenario_list, seeds)


def _sweep_with_store(args, scenario_list, seeds) -> int:
    from repro.sweeps import (
        ResultsStore,
        SweepManager,
        backend_from_name,
    )

    backend_name = args.backend or (
        "pool" if args.jobs > 1 else "inprocess"
    )
    backend = backend_from_name(
        backend_name, jobs=args.jobs, cell_timeout=args.cell_timeout
    )
    store = ResultsStore(args.store)

    def progress(record: dict) -> None:
        if record.get("event") != "cell":
            return
        status = record["status"]
        if status in ("done", "cached", "failed", "requeued"):
            detail = ""
            if status == "done":
                detail = f" ({record.get('elapsed_seconds', 0):.1f}s)"
            elif status in ("failed", "requeued"):
                detail = f" ({record.get('error')})"
            print(f"  [{status}] {record['scenario']} "
                  f"seed={record['seed']}{detail}")

    manager = SweepManager(
        scenario_list,
        seeds,
        store,
        retries=args.retries,
        progress=progress,
    )
    result = manager.run(
        backend,
        resume=args.resume,
        max_cells=args.max_cells,
    )
    counts = result.counts()
    print(f"sweep over {len(result.cells)} cells in "
          f"{result.elapsed_seconds:.1f}s (backend={backend.name}): "
          f"{counts['done']} executed, {counts['cached']} cached, "
          f"{counts['failed']} failed, "
          f"{counts['deferred'] + counts['pending']} deferred")
    print(f"store: {store.root} ({len(store)} cells), journal: "
          f"{manager.journal_path}")
    batch = result.batch()
    if batch.runs:
        _print_batch(batch, args)
    if not result.complete and not result.failed:
        print("sweep incomplete: re-invoke with --resume to continue")
    return 1 if result.failed else 0


def _command_store(args) -> int:
    from repro.sweeps import open_store

    store = open_store(args.store, must_exist=True)
    if args.action == "ls":
        entries = store.entries()
        if not entries:
            print("store is empty")
            return 0
        width = max(len(e.scenario_name) for e in entries)
        for e in entries:
            print(f"{e.scenario_name:<{width}}  seed={e.seed:<6d} "
                  f"{e.address[:12]}  {e.payload_bytes / 1024:8.1f} KiB  "
                  f"{e.elapsed_seconds:7.1f}s  "
                  f"accesses={e.summary.get('unique_accesses')}  "
                  f"{e.code_version}")
        print(f"{len(entries)} cells")
        return 0
    if args.action == "verify":
        problems = store.verify(quarantine=args.quarantine)
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        print(f"{len(store)} entries, {len(problems)} problems")
        if args.quarantine and problems:
            print(f"quarantined under {store.quarantine_dir}")
        return 1 if problems else 0
    removed = store.gc(keep_code_version=args.keep_version)
    print(f"gc removed {len(removed)} objects, kept {len(store)}")
    return 0


def _command_compare(args) -> int:
    names = [n.strip() for n in args.scenario_names.split(",") if n.strip()]
    if len(names) < 2:
        raise ConfigurationError(
            "compare needs at least two scenarios (--scenarios A,B)"
        )
    seeds = parse_seed_spec(args.seeds)
    scenario_list = [
        _apply_duration(scenarios.get(name), args.duration_days)
        for name in names
    ]
    started = time.time()
    batch = BatchRunner(jobs=args.jobs).run_matrix(scenario_list, seeds)
    elapsed = time.time() - started
    print(f"compared {len(names)} scenarios x {len(seeds)} seeds "
          f"in {elapsed:.1f}s (jobs={args.jobs})")
    aggregates = batch.aggregates
    metrics = next(iter(aggregates.values())).metrics
    name_width = max(len(m) for m in metrics)
    column = max(max(len(n) for n in names), 12) + 2
    header = " " * name_width + "".join(
        f"{name:>{column}}" for name in aggregates
    )
    print(header)
    for metric in metrics:
        row = f"{metric:<{name_width}}"
        for agg in aggregates.values():
            summary = agg.metrics[metric]
            row += f"{summary.mean:>{column - 9}.1f} ±{summary.stdev:7.1f}"
        print(row)
    for name, agg in aggregates.items():
        for test, p_value in agg.pooled_cvm.items():
            print(f"  {name} pooled cvm {test}: p={p_value:.7f}")
    for failure in batch.failures:
        print(f"  {failure.scenario_name} seed={failure.seed}: "
              f"FAILED ({failure.error})", file=sys.stderr)
    if args.out:
        path = _write_batch_summary(batch, args.out)
        print(f"wrote {path}")
    return 1 if batch.failures else 0


_COMMANDS = {
    "run": _command_run,
    "serve": _command_serve,
    "tables": _command_tables,
    "scenarios": _command_scenarios,
    "personas": _command_personas,
    "defenses": _command_defenses,
    "sweep": _command_sweep,
    "compare": _command_compare,
    "store": _command_store,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
