"""Login sessions and cookie identifiers.

The paper's unit of analysis is the *unique access*: "Google identifies
each access to a Gmail account with a cookie identifier".  A returning
device presents the same cookie, so repeated visits collapse into one
access whose duration is t_last − t0.  :class:`SessionManager` implements
that: cookies are minted per (device, account) pair and re-used on
subsequent logins from the same device.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.errors import SessionError
from repro.sim.rng import derive_seed


@dataclass(frozen=True, slots=True)
class Cookie:
    """An opaque per-device-per-account cookie identifier."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class Session:
    """A live login session bound to a cookie.

    Slotted: one session object is minted per login, which on the
    monitoring path means one per account per scrape tick.
    """

    cookie: Cookie
    account_address: str
    started_at: float
    last_active_at: float
    session_id: int
    revoked: bool = False

    def touch(self, at_time: float) -> None:
        self.last_active_at = max(self.last_active_at, at_time)


@dataclass
class SessionManager:
    """Mints cookies and tracks sessions for the provider.

    Cookie values are a pure function of the manager's seed and the
    (device, account) pair — *not* of the order devices first log in.
    That order-independence is what lets a sharded run (each shard sees
    only its accounts' logins) mint exactly the cookies the unsharded
    run mints; see :mod:`repro.core.sharding`.
    """

    rng: random.Random
    _device_cookies: dict[tuple[str, str], Cookie] = field(
        default_factory=dict
    )
    _sessions: dict[int, Session] = field(default_factory=dict)
    _counter: itertools.count = field(
        default_factory=lambda: itertools.count(1)
    )
    _cookie_seed: int = field(init=False)
    #: Per-account cookie generation; bumped on forced resets so a
    #: returning device minting "again" gets a fresh identifier.
    _cookie_generations: dict[str, int] = field(default_factory=dict)
    #: Cookies invalidated by generation bumps, oldest first — kept so
    #: ground-truth attribution still covers pre-reset accesses.
    _retired_cookies: dict[tuple[str, str], list[Cookie]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        # One draw at construction (a fixed point in the service build
        # sequence) anchors all minting; every cookie then derives from
        # this seed plus its own (device, account) path.
        self._cookie_seed = self.rng.getrandbits(64)

    def cookie_for(self, device_id: str, account_address: str) -> Cookie:
        """The stable cookie for a (device, account) pair, minting once."""
        key = (device_id, account_address)
        cookie = self._device_cookies.get(key)
        if cookie is None:
            # Generation 0 (the only generation unless a defense forced
            # a reset) derives from the exact path it always has, so
            # defenses-off runs mint byte-identical cookies; later
            # generations extend the path with the generation number.
            generation = self._cookie_generations.get(account_address, 0)
            if generation:
                seed = derive_seed(
                    self._cookie_seed,
                    device_id,
                    account_address,
                    str(generation),
                )
            else:
                seed = derive_seed(
                    self._cookie_seed, device_id, account_address
                )
            mint = random.Random(seed)
            token = "".join(
                mint.choice("abcdef0123456789") for _ in range(24)
            )
            cookie = Cookie(f"ck-{token}")
            self._device_cookies[key] = cookie
        return cookie

    def bump_cookie_generation(self, account_address: str) -> int:
        """Invalidate minted cookies on an account (forced reset).

        Cached cookies for the account are dropped, so every device —
        attacker or monitor — presents a fresh generation-``n``
        identifier on its next login; the activity page then shows the
        post-reset visits as new unique accesses, exactly as a real
        provider's cookie rotation would.  Returns the new generation.
        """
        generation = self._cookie_generations.get(account_address, 0) + 1
        self._cookie_generations[account_address] = generation
        for key in [
            key
            for key in self._device_cookies
            if key[1] == account_address
        ]:
            self._retired_cookies.setdefault(key, []).append(
                self._device_cookies.pop(key)
            )
        return generation

    def all_minted_cookies(self) -> dict[tuple[str, str], tuple[Cookie, ...]]:
        """Every cookie ever minted per (device, account), oldest first.

        Unlike :meth:`minted_cookies` this includes generations retired
        by :meth:`bump_cookie_generation`, so ground-truth attribution
        covers accesses recorded before a forced reset."""
        combined: dict[tuple[str, str], tuple[Cookie, ...]] = {
            key: tuple(retired)
            for key, retired in self._retired_cookies.items()
        }
        for key, cookie in self._device_cookies.items():
            combined[key] = combined.get(key, ()) + (cookie,)
        return combined

    def minted_cookies(self) -> dict[tuple[str, str], Cookie]:
        """Every cookie minted so far, keyed by (device, account).

        Read-only snapshot for ground-truth attribution: researchers own
        the simulation, so mapping device identities back to cookies is
        legitimate measurement metadata (never visible to the analysis
        cleaning path, which only sees scraped rows).
        """
        return dict(self._device_cookies)

    def open_session(
        self, device_id: str, account_address: str, at_time: float
    ) -> Session:
        """Open a session for a device on an account."""
        cookie = self.cookie_for(device_id, account_address)
        session = Session(
            cookie=cookie,
            account_address=account_address,
            started_at=at_time,
            last_active_at=at_time,
            session_id=next(self._counter),
        )
        self._sessions[session.session_id] = session
        return session

    def get(self, session_id: int) -> Session:
        """Fetch a live session.

        Raises:
            SessionError: if unknown or revoked.
        """
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session {session_id}")
        if session.revoked:
            raise SessionError(f"session {session_id} was revoked")
        return session

    def revoke(self, session_id: int) -> None:
        """Revoke one session (logout or enforcement)."""
        session = self._sessions.get(session_id)
        if session is not None:
            session.revoked = True

    def revoke_account_sessions(self, account_address: str) -> int:
        """Revoke all sessions on an account; returns how many."""
        revoked = 0
        for session in self._sessions.values():
            if session.account_address == account_address and not session.revoked:
                session.revoked = True
                revoked += 1
        return revoked

    def sessions_for(self, account_address: str) -> list[Session]:
        """All sessions (live and revoked) ever opened on an account."""
        return [
            s
            for s in self._sessions.values()
            if s.account_address == account_address
        ]
