"""The webmail service facade.

:class:`WebmailService` is the provider: it owns accounts, sessions, the
activity page, outbound routing, anti-abuse, and (via an attached runtime)
Apps Scripts.  Attackers and the monitoring infrastructure both interact
with accounts exclusively through this API, so everything the analysis
sees flows through the same choke points as in the real service.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    AccountBlockedError,
    AuthenticationError,
    NoSuchAccountError,
)
from repro.netsim.fingerprint import fingerprint_from_user_agent
from repro.netsim.geo import GeoDatabase
from repro.netsim.ipaddr import IPAddress
from repro.webmail.abuse import AbusePolicy, AntiAbuseEngine
from repro.webmail.account import Credentials, WebmailAccount
from repro.webmail.activity import AccessEvent, ActivityPage
from repro.webmail.mailbox import Folder
from repro.webmail.message import EmailMessage
from repro.webmail.search import SearchQuery, search_messages
from repro.webmail.sessions import Session, SessionManager
from repro.webmail.smtp import OutboundRouter, SentEmail


@dataclass(frozen=True)
class LoginContext:
    """Everything a connection presents at login."""

    device_id: str
    ip_address: IPAddress
    user_agent: str


class WebmailService:
    """The simulated provider ("Gmail" in the paper).

    Args:
        geo: geolocation database used to resolve login IPs.
        rng: provider-side randomness (cookie minting, abuse sampling).
        abuse_policy: enforcement thresholds.
    """

    def __init__(
        self,
        geo: GeoDatabase,
        rng: random.Random,
        *,
        abuse_policy: AbusePolicy | None = None,
    ) -> None:
        self._geo = geo
        self._accounts: dict[str, WebmailAccount] = {}
        self.sessions = SessionManager(rng=rng)
        self.activity = ActivityPage()
        self.router = OutboundRouter()
        self.abuse = AntiAbuseEngine(
            policy=abuse_policy or AbusePolicy(), rng=rng
        )
        self.search_log: list[SearchQuery] = []
        #: Optional hook fired on every bad-password login attempt with
        #: ``(address, context, now)`` — the defense layer counts
        #: post-reset attacker lockouts through it.  ``None`` (the
        #: default) adds nothing to the login path.
        self.auth_failure_listener = None
        self.router.set_inbound_delivery(self._deliver_local)

    # ------------------------------------------------------------------
    # account management
    # ------------------------------------------------------------------
    def create_account(
        self, credentials: Credentials, display_name: str
    ) -> WebmailAccount:
        """Register a new account.

        Raises:
            NoSuchAccountError: if the address already exists (reuse of the
                error type keeps the hierarchy small; message is explicit).
        """
        if credentials.address in self._accounts:
            raise NoSuchAccountError(
                f"address already registered: {credentials.address}"
            )
        account = WebmailAccount(
            credentials=credentials, display_name=display_name
        )
        self._accounts[credentials.address] = account
        return account

    def account(self, address: str) -> WebmailAccount:
        """Fetch an account by address.

        Raises:
            NoSuchAccountError: when the address is unknown.
        """
        try:
            return self._accounts[address]
        except KeyError as exc:
            raise NoSuchAccountError(address) from exc

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    @property
    def account_addresses(self) -> tuple[str, ...]:
        return tuple(self._accounts)

    def _deliver_local(self, recipient: str, message: EmailMessage) -> bool:
        """Deliver a message to a local inbox if the recipient is ours."""
        account = self._accounts.get(recipient)
        if account is None:
            return False
        account.mailbox.add(Folder.INBOX, message)
        return True

    def deliver_inbound(self, recipient: str, message: EmailMessage) -> bool:
        """External-world mail arriving at a local account (e.g. forum
        registration confirmations sent *to* a honey address)."""
        return self._deliver_local(recipient, message)

    # ------------------------------------------------------------------
    # login / sessions
    # ------------------------------------------------------------------
    def login(
        self,
        address: str,
        password: str,
        context: LoginContext,
        now: float,
    ) -> Session:
        """Authenticate and open a session, recording the access.

        Raises:
            NoSuchAccountError: unknown address.
            AccountBlockedError: the account was suspended.
            AuthenticationError: wrong password.
        """
        account = self.account(address)
        if account.is_blocked:
            raise AccountBlockedError(address, account.blocked_reason or "")
        if not account.verify_password(password):
            if self.auth_failure_listener is not None:
                self.auth_failure_listener(address, context, now)
            raise AuthenticationError(f"bad password for {address}")
        session = self.sessions.open_session(
            context.device_id, address, now
        )
        self._record_access(session, context, now)
        return session

    def _record_access(
        self, session: Session, context: LoginContext, now: float
    ) -> None:
        event = AccessEvent(
            account_address=session.account_address,
            cookie=session.cookie,
            ip_address=context.ip_address,
            location=self._geo.locate(context.ip_address),
            fingerprint=fingerprint_from_user_agent(context.user_agent),
            timestamp=now,
        )
        self.activity.record(event)

    def touch(self, session: Session, now: float) -> None:
        """Mark continued activity on a session (extends its duration)."""
        session.touch(now)

    def logout(self, session: Session) -> None:
        self.sessions.revoke(session.session_id)

    # ------------------------------------------------------------------
    # mailbox operations (session-scoped)
    # ------------------------------------------------------------------
    def _account_for_session(self, session: Session) -> WebmailAccount:
        account = self.account(session.account_address)
        if account.is_blocked:
            raise AccountBlockedError(
                account.address, account.blocked_reason or ""
            )
        return account

    def read_message(
        self, session: Session, message_id: str, now: float
    ) -> EmailMessage:
        """Open a message (marks it read)."""
        account = self._account_for_session(session)
        session.touch(now)
        return account.mailbox.mark_read(message_id)

    def star_message(
        self, session: Session, message_id: str, now: float
    ) -> EmailMessage:
        account = self._account_for_session(session)
        session.touch(now)
        return account.mailbox.star(message_id)

    def search(
        self, session: Session, query: str, now: float
    ) -> list[EmailMessage]:
        """Run a mailbox search, logging the query (ground truth only)."""
        account = self._account_for_session(session)
        session.touch(now)
        results = search_messages(account.mailbox, query)
        self.search_log.append(
            SearchQuery(
                account_address=account.address,
                query=query,
                timestamp=now,
                result_count=len(results),
            )
        )
        return results

    def create_draft(
        self,
        session: Session,
        subject: str,
        body: str,
        recipients: tuple[str, ...],
        now: float,
    ) -> EmailMessage:
        """Save a draft (content lands in the Drafts folder)."""
        account = self._account_for_session(session)
        session.touch(now)
        draft = EmailMessage(
            sender_name=account.display_name,
            sender_address=account.address,
            recipient_addresses=recipients,
            subject=subject,
            body=body,
            received_at=now,
        )
        account.mailbox.add(Folder.DRAFTS, draft)
        return draft

    def send_email(
        self,
        session: Session,
        subject: str,
        body: str,
        recipients: tuple[str, ...],
        now: float,
        *,
        draft_id: str | None = None,
    ) -> SentEmail:
        """Send an email (or a previously saved draft).

        The send is routed through the outbound router (sinkhole-aware) and
        scored by anti-abuse, which may suspend the account.
        """
        account = self._account_for_session(session)
        session.touch(now)
        if draft_id is not None:
            message = account.mailbox.get(draft_id)
            account.mailbox.move(draft_id, Folder.SENT)
        else:
            message = EmailMessage(
                sender_name=account.display_name,
                sender_address=account.address,
                recipient_addresses=recipients,
                subject=subject,
                body=body,
                received_at=now,
            )
            account.mailbox.add(Folder.SENT, message)
        sent = self.router.send(
            account.address,
            message,
            recipients,
            send_from_override=account.send_from_override,
            timestamp=now,
        )
        blocked = self.abuse.observe_send(account, len(recipients), now)
        if blocked:
            self.sessions.revoke_account_sessions(account.address)
        return sent

    def change_password(
        self, session: Session, new_password: str, now: float
    ) -> None:
        """Change the account password (the hijacker move).

        Other devices' cookies stay valid for mailbox actions already in
        flight, but new logins require the new password — which locks out
        the monitoring scraper exactly as in the paper.
        """
        account = self._account_for_session(session)
        session.touch(now)
        account.change_password(new_password, now)
        blocked = self.abuse.observe_password_change(account, now)
        if blocked:
            self.sessions.revoke_account_sessions(account.address)
