"""Outbound mail routing, send-from overrides, and delivery accounting.

The honey accounts are configured so "all emails sent from the account
honeypots are delivered to [a] mailserver, which simply dumps the emails
to disk and does not forward them to the intended destination".
:class:`OutboundRouter` implements that: destinations are resolved per
account, and sinkholed mail is handed to the registered sink instead of
being delivered.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.webmail.message import EmailMessage


class DeliveryOutcome(enum.Enum):
    """What happened to one outbound email."""

    DELIVERED = "delivered"
    SINKHOLED = "sinkholed"
    BLOCKED = "blocked"


@dataclass(frozen=True)
class SentEmail:
    """Provider-side record of an outbound send attempt."""

    account_address: str
    message: EmailMessage
    recipients: tuple[str, ...]
    outcome: DeliveryOutcome
    timestamp: float


class MailSink(Protocol):
    """Anything that can swallow sinkholed mail (the sinkhole server)."""

    def receive(self, sent: SentEmail) -> None:  # pragma: no cover
        """Accept one sinkholed email."""
        ...


@dataclass
class OutboundRouter:
    """Routes outbound mail, honouring per-account sinkhole overrides."""

    _sinks: dict[str, MailSink] = field(default_factory=dict)
    _ledger: list[SentEmail] = field(default_factory=list)
    _inbound_delivery: Callable[[str, EmailMessage], bool] | None = None

    def register_sink(self, sink_address: str, sink: MailSink) -> None:
        """Register the mail sink behind ``sink_address``."""
        self._sinks[sink_address] = sink

    def set_inbound_delivery(
        self, deliver: Callable[[str, EmailMessage], bool]
    ) -> None:
        """Install the callback that delivers to local provider accounts."""
        self._inbound_delivery = deliver

    def send(
        self,
        account_address: str,
        message: EmailMessage,
        recipients: tuple[str, ...],
        *,
        send_from_override: str | None,
        timestamp: float,
    ) -> SentEmail:
        """Route one outbound email and record the outcome.

        When the account carries a send-from override pointing at a
        registered sink, the mail is sinkholed; otherwise it is delivered
        to any local recipients (remote ones are assumed delivered).
        """
        if send_from_override is not None and send_from_override in self._sinks:
            outcome = DeliveryOutcome.SINKHOLED
            sent = SentEmail(
                account_address=account_address,
                message=message,
                recipients=recipients,
                outcome=outcome,
                timestamp=timestamp,
            )
            self._sinks[send_from_override].receive(sent)
        else:
            if self._inbound_delivery is not None:
                for recipient in recipients:
                    self._inbound_delivery(recipient, message)
            sent = SentEmail(
                account_address=account_address,
                message=message,
                recipients=recipients,
                outcome=DeliveryOutcome.DELIVERED,
                timestamp=timestamp,
            )
        self._ledger.append(sent)
        return sent

    def record_blocked(
        self,
        account_address: str,
        message: EmailMessage,
        recipients: tuple[str, ...],
        timestamp: float,
    ) -> SentEmail:
        """Record a send attempt rejected by anti-abuse."""
        sent = SentEmail(
            account_address=account_address,
            message=message,
            recipients=recipients,
            outcome=DeliveryOutcome.BLOCKED,
            timestamp=timestamp,
        )
        self._ledger.append(sent)
        return sent

    @property
    def ledger(self) -> tuple[SentEmail, ...]:
        """Every send attempt seen by the router."""
        return tuple(self._ledger)

    def sent_by(self, account_address: str) -> tuple[SentEmail, ...]:
        """Send attempts from one account."""
        return tuple(
            s for s in self._ledger if s.account_address == account_address
        )
