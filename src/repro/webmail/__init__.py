"""Simulated webmail service (Gmail-like substrate).

The paper's honeypot framework is built on Gmail features: mailboxes with
folders/labels/stars/drafts, full-text search, per-access cookies, the
account activity page (IP, geolocated city, device fingerprint), an Apps
Script runtime with time triggers and execution quotas, send-from address
overrides, and anti-abuse enforcement that suspends accounts.  This package
implements all of those from scratch so the honey-account framework in
``repro.core`` runs against a faithful provider.
"""

from repro.webmail.abuse import AbusePolicy, AntiAbuseEngine
from repro.webmail.account import AccountState, Credentials, WebmailAccount
from repro.webmail.activity import AccessEvent, ActivityPage
from repro.webmail.appsscript import AppsScript, AppsScriptRuntime, ScriptQuota
from repro.webmail.mailbox import Folder, Mailbox
from repro.webmail.message import EmailMessage, MessageFlags
from repro.webmail.search import search_messages
from repro.webmail.service import LoginContext, WebmailService
from repro.webmail.sessions import Cookie, Session, SessionManager
from repro.webmail.smtp import DeliveryOutcome, OutboundRouter, SentEmail

__all__ = [
    "AbusePolicy",
    "AccessEvent",
    "AccountState",
    "ActivityPage",
    "AntiAbuseEngine",
    "AppsScript",
    "AppsScriptRuntime",
    "Cookie",
    "Credentials",
    "DeliveryOutcome",
    "EmailMessage",
    "Folder",
    "LoginContext",
    "Mailbox",
    "MessageFlags",
    "OutboundRouter",
    "ScriptQuota",
    "SentEmail",
    "Session",
    "SessionManager",
    "WebmailAccount",
    "WebmailService",
    "search_messages",
]
