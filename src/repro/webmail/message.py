"""Email messages as stored by the webmail service.

Message ids are minted by the :class:`~repro.webmail.mailbox.Mailbox`
that first files a message (per-mailbox counters, tagged with the
mailbox owner), *not* by a process-global counter: ids must be a
function of the owning account's history alone so that sharded runs
(:mod:`repro.core.sharding`) reproduce the serial run's ids exactly.
A message constructed but never filed keeps an empty id.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MessageFlags:
    """Mutable per-message state the UI exposes."""

    read: bool = False
    starred: bool = False

    def copy(self) -> "MessageFlags":
        return MessageFlags(read=self.read, starred=self.starred)


@dataclass
class EmailMessage:
    """One message in a mailbox.

    ``received_at`` is sim-time for messages that arrive during the
    experiment and a *negative* sim-time for seeded history (their dates
    predate the epoch), so ordering works uniformly.
    """

    sender_name: str
    sender_address: str
    recipient_addresses: tuple[str, ...]
    subject: str
    body: str
    received_at: float
    labels: set[str] = field(default_factory=set)
    flags: MessageFlags = field(default_factory=MessageFlags)
    #: Assigned by the first mailbox that files the message; empty until
    #: then (and for messages that never reach a mailbox).
    message_id: str = ""

    @property
    def text(self) -> str:
        """Subject plus body — the searchable/analysable content."""
        return f"{self.subject}\n{self.body}"

    def matches(self, query: str) -> bool:
        """Case-insensitive substring search over subject and body."""
        needle = query.lower()
        return needle in self.subject.lower() or needle in self.body.lower()

    def snapshot(self) -> dict:
        """A plain-dict snapshot used by monitoring diffs."""
        return {
            "message_id": self.message_id,
            "subject": self.subject,
            "read": self.flags.read,
            "starred": self.flags.starred,
        }
