"""Webmail accounts: credentials, state, and settings."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.webmail.mailbox import Mailbox


@dataclass(frozen=True)
class Credentials:
    """A username/password pair as leaked on the outlets."""

    address: str
    password: str

    def __post_init__(self) -> None:
        if "@" not in self.address:
            raise ConfigurationError(
                f"address must be fully qualified: {self.address!r}"
            )
        if not self.password:
            raise ConfigurationError("password must be non-empty")

    def with_password(self, new_password: str) -> "Credentials":
        """Credentials with the same address and a new password."""
        return Credentials(self.address, new_password)


class AccountState(enum.Enum):
    """Provider-side lifecycle state of an account."""

    ACTIVE = "active"
    BLOCKED = "blocked"


@dataclass
class WebmailAccount:
    """One account at the simulated provider.

    Attributes:
        credentials: the current (possibly hijacker-changed) credentials.
        mailbox: the account's messages.
        send_from_override: when set, outbound mail is routed to this
            address's mail server instead of real recipients — the paper's
            sinkhole trick for honey accounts.
        suspicious_login_filter: Gmail's login risk analysis; the paper had
            Google disable it for honey accounts so attackers could get in.
    """

    credentials: Credentials
    display_name: str
    mailbox: Mailbox = field(default_factory=Mailbox)
    state: AccountState = AccountState.ACTIVE
    # (mailbox owner tag is bound to the address in __post_init__)
    send_from_override: str | None = None
    suspicious_login_filter: bool = True
    blocked_reason: str | None = None
    blocked_at: float | None = None
    password_changed_at: float | None = None
    password_change_count: int = 0

    def __post_init__(self) -> None:
        # Message ids minted by this account's mailbox carry the
        # address, keeping them unique across accounts and independent
        # of every other account's activity.
        if self.mailbox.owner == "local":
            self.mailbox.owner = self.credentials.address

    @property
    def address(self) -> str:
        return self.credentials.address

    @property
    def is_blocked(self) -> bool:
        return self.state is AccountState.BLOCKED

    def verify_password(self, password: str) -> bool:
        """Constant-behaviour password check."""
        return self.credentials.password == password

    def change_password(self, new_password: str, at_time: float) -> None:
        """Rotate the password (the hijacker action)."""
        self.credentials = self.credentials.with_password(new_password)
        self.password_changed_at = at_time
        self.password_change_count += 1

    def block(self, reason: str, at_time: float) -> None:
        """Suspend the account (anti-abuse enforcement)."""
        self.state = AccountState.BLOCKED
        self.blocked_reason = reason
        self.blocked_at = at_time
