"""Provider anti-abuse: spam detection and account suspension.

During the paper's experiment "Google suspended a number of accounts under
our control that attempted to send spam" — 42 of the 100 accounts ended up
blocked for Terms-of-Service violations.  The suspicious-login filter was
disabled for honey accounts, but "all other malicious activity detection
algorithms were still in place".

:class:`AntiAbuseEngine` models that enforcement: it scores outbound
sending behaviour (burst rate, recipient spread, duplicate content) and
risky account actions, and suspends an account once its score crosses the
policy threshold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.rng import derive_seed
from repro.webmail.account import WebmailAccount


@dataclass(frozen=True)
class AbusePolicy:
    """Tunable enforcement thresholds.

    The paper reports that while the suspicious-*login* filter was disabled
    for honey accounts, "all other malicious activity detection algorithms
    were still in place" and 42 accounts ended up suspended for ToS
    violations.  Enforcement therefore keys on several signals: outbound
    bursts, hijacks (password rotation), logins from known-bad (blacklisted)
    or anonymised origins combined with abusive behaviour, and aggressive
    mailbox scraping.

    Attributes:
        burst_window_seconds: window for counting outbound bursts.
        burst_threshold: sends within the window that mark a spam burst.
        spam_block_probability: chance a detected burst blocks the account
            (detection is good but not instant or perfect).
        hijack_block_probability: chance that a password change triggers
            enforcement.
        blacklisted_login_block_probability: chance a login from a
            blacklisted IP triggers enforcement.
        tor_login_block_probability: chance a Tor/proxy login triggers
            enforcement (low: Tor alone is weak evidence).
        search_abuse_block_probability: chance that bulk sensitive-term
            searching trips behavioural detection.
    """

    burst_window_seconds: float = 3600.0
    burst_threshold: int = 80
    spam_block_probability: float = 0.30
    hijack_block_probability: float = 0.30
    blacklisted_login_block_probability: float = 0.20
    tor_login_block_probability: float = 0.025
    search_abuse_block_probability: float = 0.015

    def __post_init__(self) -> None:
        if self.burst_threshold < 1:
            raise ValueError("burst_threshold must be >= 1")
        probability_fields = (
            "spam_block_probability",
            "hijack_block_probability",
            "blacklisted_login_block_probability",
            "tor_login_block_probability",
            "search_abuse_block_probability",
        )
        for name in probability_fields:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")


@dataclass
class AntiAbuseEngine:
    """Scores sending behaviour and suspends violating accounts.

    Enforcement draws come from a per-account stream derived from the
    engine's seed, consumed in that account's own event order.  Whether
    an account gets blocked therefore depends only on what happened *on
    that account* — not on how its events interleave with other
    accounts' — which is the property that keeps a sharded run
    (:mod:`repro.core.sharding`) bit-identical to the serial one.
    """

    policy: AbusePolicy
    rng: random.Random
    _send_times: dict[str, list[float]] = field(default_factory=dict)
    blocked_accounts: list[str] = field(default_factory=list)
    _seed: int = field(init=False)
    _account_rngs: dict[str, random.Random] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._seed = self.rng.getrandbits(64)

    def _rng_for(self, address: str) -> random.Random:
        rng = self._account_rngs.get(address)
        if rng is None:
            rng = random.Random(derive_seed(self._seed, address))
            self._account_rngs[address] = rng
        return rng

    def _within_window(self, address: str, now: float) -> int:
        times = self._send_times.setdefault(address, [])
        cutoff = now - self.policy.burst_window_seconds
        # Compact the history while counting — windows are short-lived.
        times[:] = [t for t in times if t >= cutoff]
        return len(times)

    def observe_send(
        self, account: WebmailAccount, recipient_count: int, now: float
    ) -> bool:
        """Record one outbound send; returns True if the account was blocked.

        Each recipient counts toward the burst window, so one email blasted
        to 30 addresses trips the threshold just like 30 single sends.
        """
        if account.is_blocked:
            return True
        times = self._send_times.setdefault(account.address, [])
        times.extend([now] * max(1, recipient_count))
        in_window = self._within_window(account.address, now)
        if in_window >= self.policy.burst_threshold:
            if self._rng_for(account.address).random() < (
                self.policy.spam_block_probability
            ):
                self._block(account, "spam-burst", now)
                return True
        return False

    def observe_password_change(
        self, account: WebmailAccount, now: float
    ) -> bool:
        """Record a password change; may trigger hijack enforcement."""
        if account.is_blocked:
            return True
        if self._rng_for(account.address).random() < (
            self.policy.hijack_block_probability
        ):
            self._block(account, "hijack-activity", now)
            return True
        return False

    def observe_login_signal(
        self,
        account: WebmailAccount,
        *,
        blacklisted_ip: bool,
        anonymised: bool,
        now: float,
    ) -> bool:
        """Score reputation signals on an already-authenticated login.

        This is *not* the suspicious-login filter (disabled for honey
        accounts): it models post-login abuse detection keyed on source
        reputation.  Returns True if the account was suspended.
        """
        if account.is_blocked:
            return True
        if blacklisted_ip and (
            self._rng_for(account.address).random()
            < self.policy.blacklisted_login_block_probability
        ):
            self._block(account, "blacklisted-ip-activity", now)
            return True
        if anonymised and (
            self._rng_for(account.address).random()
            < self.policy.tor_login_block_probability
        ):
            self._block(account, "anonymised-abuse", now)
            return True
        return False

    def observe_search_burst(
        self, account: WebmailAccount, now: float
    ) -> bool:
        """Score a sensitive-term search session (gold-digger behaviour)."""
        if account.is_blocked:
            return True
        if self._rng_for(account.address).random() < (
            self.policy.search_abuse_block_probability
        ):
            self._block(account, "behavioural-anomaly", now)
            return True
        return False

    def _block(self, account: WebmailAccount, reason: str, now: float) -> None:
        account.block(reason, now)
        self.blocked_accounts.append(account.address)

    @property
    def blocked_count(self) -> int:
        return len(self.blocked_accounts)
