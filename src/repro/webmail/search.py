"""Full-text search over a mailbox.

Gmail's search box is how "gold digger" attackers locate valuable mail;
the paper infers their queries indirectly because search logs were not
available.  The service-side search here supports multi-term queries and
records query strings, so the simulator has ground truth to validate the
TF-IDF inference against (tests only — the analysis pipeline never reads
the query log).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.webmail.mailbox import Folder, Mailbox
from repro.webmail.message import EmailMessage


@dataclass(frozen=True)
class SearchQuery:
    """A recorded search query (provider ground truth)."""

    account_address: str
    query: str
    timestamp: float
    result_count: int


def search_messages(
    mailbox: Mailbox,
    query: str,
    *,
    folders: tuple[Folder, ...] = (Folder.INBOX, Folder.SENT, Folder.DRAFTS),
    limit: int | None = None,
) -> list[EmailMessage]:
    """Search a mailbox for messages matching every term of ``query``.

    Terms are whitespace-separated; a message matches when each term
    appears (case-insensitively) in its subject or body, approximating
    webmail search semantics.  Results keep folder order (inbox first,
    then sent, then drafts) and are capped at ``limit`` when given.
    """
    terms = [t for t in query.lower().split() if t]
    if not terms:
        return []
    results: list[EmailMessage] = []
    for folder in folders:
        for message in mailbox.messages(folder):
            haystack = message.text.lower()
            if all(term in haystack for term in terms):
                results.append(message)
                if limit is not None and len(results) >= limit:
                    return results
    return results
