"""The account activity page.

Gmail's "last account activity" page lists recent accesses with IP
address, geolocated city (when resolvable), and device/browser details.
The paper's monitoring scripts scrape this page; its analysis counts
unique accesses by cookie and measures locations.  :class:`ActivityPage`
is the provider-side log that scraping reads.

The page is append-only and time-ordered (the simulator's clock is
monotonic), so incremental consumers never rescan: each account keeps a
parallel timestamp array for O(log n) time bisection, and
:meth:`ActivityPage.read_from` hands scrapers an index cursor so every
visit costs O(new events) regardless of how much history the account
has accumulated.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.netsim.fingerprint import DeviceFingerprint
from repro.netsim.geo import GeoLocation
from repro.netsim.ipaddr import IPAddress
from repro.webmail.sessions import Cookie


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One row of the activity page: a login or returning visit."""

    account_address: str
    cookie: Cookie
    ip_address: IPAddress
    location: GeoLocation | None
    fingerprint: DeviceFingerprint
    timestamp: float

    @property
    def has_location(self) -> bool:
        """False for Tor/proxy accesses, which Google cannot geolocate."""
        return self.location is not None


@dataclass
class ActivityPage:
    """Per-account access log, append-only, scrape-friendly."""

    _events: dict[str, list[AccessEvent]] = field(default_factory=dict)
    #: Parallel per-account timestamp columns for bisection; appends are
    #: monotone because the simulator clock never goes backwards.
    _times: dict[str, array] = field(default_factory=dict)

    def record(self, event: AccessEvent) -> None:
        """Append an access event for its account."""
        address = event.account_address
        events = self._events.get(address)
        if events is None:
            events = self._events[address] = []
            self._times[address] = array("d")
        events.append(event)
        self._times[address].append(event.timestamp)

    def events_for(self, account_address: str) -> tuple[AccessEvent, ...]:
        """All recorded events for an account, oldest first."""
        return tuple(self._events.get(account_address, ()))

    def events_since(
        self, account_address: str, after_time: float
    ) -> tuple[AccessEvent, ...]:
        """Events strictly newer than ``after_time`` (incremental scrape).

        O(log n + new events) via bisection on the timestamp column —
        scrapers that remember their index should prefer
        :meth:`read_from`, which needs no search at all.
        """
        events = self._events.get(account_address)
        if not events:
            return ()
        start = bisect_right(self._times[account_address], after_time)
        return tuple(events[start:])

    def read_from(
        self, account_address: str, cursor: int
    ) -> tuple[tuple[AccessEvent, ...], int]:
        """Events appended at or after index ``cursor``, plus the new cursor.

        The returned cursor is the index one past the last event read;
        passing it back on the next visit yields only fresh events.
        """
        events = self._events.get(account_address)
        if not events:
            return (), cursor
        return tuple(events[cursor:]), len(events)

    def event_count(self, account_address: str) -> int:
        """Number of recorded events for one account."""
        return len(self._events.get(account_address, ()))

    def total_events(self) -> int:
        """Total events across accounts (diagnostics)."""
        return sum(len(v) for v in self._events.values())
