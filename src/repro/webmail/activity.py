"""The account activity page.

Gmail's "last account activity" page lists recent accesses with IP
address, geolocated city (when resolvable), and device/browser details.
The paper's monitoring scripts scrape this page; its analysis counts
unique accesses by cookie and measures locations.  :class:`ActivityPage`
is the provider-side log that scraping reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.fingerprint import DeviceFingerprint
from repro.netsim.geo import GeoLocation
from repro.netsim.ipaddr import IPAddress
from repro.webmail.sessions import Cookie


@dataclass(frozen=True)
class AccessEvent:
    """One row of the activity page: a login or returning visit."""

    account_address: str
    cookie: Cookie
    ip_address: IPAddress
    location: GeoLocation | None
    fingerprint: DeviceFingerprint
    timestamp: float

    @property
    def has_location(self) -> bool:
        """False for Tor/proxy accesses, which Google cannot geolocate."""
        return self.location is not None


@dataclass
class ActivityPage:
    """Per-account access log, append-only, scrape-friendly."""

    _events: dict[str, list[AccessEvent]] = field(default_factory=dict)

    def record(self, event: AccessEvent) -> None:
        """Append an access event for its account."""
        self._events.setdefault(event.account_address, []).append(event)

    def events_for(self, account_address: str) -> tuple[AccessEvent, ...]:
        """All recorded events for an account, oldest first."""
        return tuple(self._events.get(account_address, ()))

    def events_since(
        self, account_address: str, after_time: float
    ) -> tuple[AccessEvent, ...]:
        """Events strictly newer than ``after_time`` (incremental scrape)."""
        return tuple(
            e
            for e in self._events.get(account_address, ())
            if e.timestamp > after_time
        )

    def total_events(self) -> int:
        """Total events across accounts (diagnostics)."""
        return sum(len(v) for v in self._events.values())
