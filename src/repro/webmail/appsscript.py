"""Apps-Script-like scripting runtime with time triggers and quotas.

Google Apps Script lets account owners attach scripts with time-driven
triggers; the paper's monitor scans mailboxes every 10 minutes and sends a
daily heartbeat, hiding the script inside a spreadsheet.  Google also
enforces execution-time quotas — two honey accounts received "using too
much computer time" notifications, which attackers then read (a case study
in Section 4.7).

:class:`AppsScriptRuntime` reproduces those semantics: scripts are bound to
accounts, fire on periodic triggers, accrue simulated execution time
against a daily quota, and keep running even when the account password
changes (only deletion of the script, or account suspension by the
provider, stops them).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Protocol

from repro.errors import QuotaExceededError, ConfigurationError
from repro.sim.clock import days
from repro.sim.engine import Simulator
from repro.sim.process import BatchMember, PeriodicBatch, PeriodicProcess


class AppsScript(Protocol):
    """Interface for account-bound scripts."""

    #: Simulated execution cost (seconds of "computer time") per run.
    execution_cost: float

    def run(self, now: float) -> None:  # pragma: no cover - protocol
        """Execute one trigger firing at sim-time ``now``."""
        ...


@dataclass(slots=True)
class ScriptQuota:
    """Daily execution-time budget for one account's scripts."""

    daily_limit_seconds: float = 90.0
    used_seconds: float = 0.0
    window_start: float = 0.0

    def charge(self, cost: float, now: float) -> None:
        """Consume quota; resets at day boundaries.

        Raises:
            QuotaExceededError: when the daily budget is exhausted.
        """
        if now - self.window_start >= days(1):
            self.window_start = now - (now - self.window_start) % days(1)
            self.used_seconds = 0.0
        self.used_seconds += cost
        if self.used_seconds > self.daily_limit_seconds:
            raise QuotaExceededError(
                f"daily script quota exceeded: {self.used_seconds:.1f}s "
                f"> {self.daily_limit_seconds:.1f}s"
            )


@dataclass
class _Installation:
    """One script installed on one account.

    ``trigger`` is the stop handle for the installation's schedule:
    a shared-tick :class:`~repro.sim.process.BatchMember` on the fast
    path, or a dedicated :class:`~repro.sim.process.PeriodicProcess`
    when trigger batching is off.  Both expose ``stop()``.
    """

    account_address: str
    script: AppsScript
    trigger: BatchMember | PeriodicProcess
    hidden_in: str
    deleted: bool = False


class AppsScriptRuntime:
    """Executes installed scripts on their time triggers.

    Same-cadence, same-phase triggers — every honey account's scan
    script, in the paper's setup — share one calendar batch: a single
    heap event per tick that executes the installations in install
    order, exactly the order their individual events would have popped
    by sequence number.  A 200-account run schedules ~200x fewer events
    without moving a single script execution in time or order.

    Args:
        sim: the simulation engine providing triggers.
        quota_notifier: callback invoked as ``(account_address, now)``
            whenever a script run trips the daily quota; the honey
            framework wires this to the provider's notification email
            ("using too much computer time").
        batch_triggers: share heap events between same-cadence
            same-phase triggers (default).  Disable to schedule one
            :class:`PeriodicProcess` per installation, as the pre-batch
            code did — kept for the ``bench_run.py`` regression gate
            and for equivalence tests.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        quota_notifier: Callable[[str, float], None] | None = None,
        daily_quota_seconds: float = 90.0,
        batch_triggers: bool = True,
    ) -> None:
        self._sim = sim
        self._installations: dict[int, _Installation] = {}
        self._quotas: dict[str, ScriptQuota] = {}
        self._quota_notifier = quota_notifier
        self._daily_quota_seconds = daily_quota_seconds
        self._next_id = 1
        self.batch_triggers = batch_triggers
        self._batches: list[PeriodicBatch] = []
        self.runs_executed = 0
        self.quota_trips = 0

    def _batch_for(self, period: float, start_delay: float | None) -> PeriodicBatch:
        """The live batch whose pending tick matches ``now + start_delay``,
        creating one when no compatible batch exists."""
        first_delay = float(period) if start_delay is None else float(start_delay)
        first_time = self._sim.clock.now + first_delay
        for batch in self._batches:
            if batch.matches(period, first_time):
                return batch
        batch = PeriodicBatch(
            self._sim,
            period,
            start_delay=first_delay,
            label=f"apps-script:batch:{period:g}s",
        )
        self._batches = [b for b in self._batches if not b.stopped]
        self._batches.append(batch)
        return batch

    def install(
        self,
        account_address: str,
        script: AppsScript,
        *,
        period: float,
        start_delay: float | None = None,
        hidden_in: str = "spreadsheet:Budget2015",
    ) -> int:
        """Install ``script`` on an account with a time trigger.

        Returns an installation id usable with :meth:`uninstall`.
        """
        if period <= 0:
            raise ConfigurationError("trigger period must be positive")
        installation_id = self._next_id
        self._next_id += 1
        # partial (not a closure) so a checkpointed world pickles: the
        # event queue holds these callbacks mid-run.
        _fire = partial(self._execute, installation_id)
        if self.batch_triggers:
            trigger: BatchMember | PeriodicProcess = self._batch_for(
                period, start_delay
            ).add(_fire)
        else:
            trigger = PeriodicProcess(
                self._sim,
                period,
                _fire,
                start_delay=start_delay,
                label=f"apps-script:{account_address}:{installation_id}",
            )
        self._installations[installation_id] = _Installation(
            account_address=account_address,
            script=script,
            trigger=trigger,
            hidden_in=hidden_in,
        )
        self._quotas.setdefault(
            account_address,
            ScriptQuota(daily_limit_seconds=self._daily_quota_seconds),
        )
        return installation_id

    def _execute(self, installation_id: int) -> None:
        installation = self._installations.get(installation_id)
        if installation is None or installation.deleted:
            return
        now = self._sim.clock.now
        quota = self._quotas[installation.account_address]
        try:
            quota.charge(installation.script.execution_cost, now)
        except QuotaExceededError:
            self.quota_trips += 1
            if self._quota_notifier is not None:
                self._quota_notifier(installation.account_address, now)
            return  # run skipped this tick; quota resets next day
        installation.script.run(now)
        self.runs_executed += 1

    def uninstall(self, installation_id: int) -> None:
        """Remove a script (an attacker deleting it, or teardown)."""
        installation = self._installations.get(installation_id)
        if installation is None:
            return
        installation.deleted = True
        installation.trigger.stop()

    def uninstall_account(self, account_address: str) -> int:
        """Remove every script on an account; returns how many."""
        removed = 0
        for installation in self._installations.values():
            if (
                installation.account_address == account_address
                and not installation.deleted
            ):
                installation.deleted = True
                installation.trigger.stop()
                removed += 1
        return removed

    def scripts_on(self, account_address: str) -> list[int]:
        """Ids of live installations on an account."""
        return [
            iid
            for iid, inst in self._installations.items()
            if inst.account_address == account_address and not inst.deleted
        ]

    def hidden_location(self, installation_id: int) -> str:
        """Where the script hides (the paper tucks it in a spreadsheet)."""
        return self._installations[installation_id].hidden_in
