"""Mailbox: folders, labels, stars, drafts, sent mail.

Models the Gmail surface described in the paper's Background section:
an inbox highlighting unread mail, starring, labels/folders, a Drafts
folder for unsent content and a Sent folder for delivered mail.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import NoSuchMessageError
from repro.webmail.message import EmailMessage


class Folder(enum.Enum):
    """Built-in mailbox folders."""

    INBOX = "inbox"
    SENT = "sent"
    DRAFTS = "drafts"
    TRASH = "trash"


@dataclass(frozen=True)
class MailboxChange:
    """One observable mailbox state change.

    ``kind`` is one of ``"read"``, ``"starred"``, ``"draft_created"``,
    ``"sent"`` or ``"received"``.  The honey monitoring script discovers
    changes by scanning; the changelog gives it (and only it) an efficient
    equivalent of diffing two snapshots.
    """

    kind: str
    message_id: str


@dataclass
class Mailbox:
    """All messages of one account, organised by folder.

    The mailbox mints message ids: the first time a message is filed
    anywhere, it gets ``msg-<owner>-<n>`` from this mailbox's own
    counter.  Ids are therefore a function of the owning account's
    filing history alone — two runs that file the same messages into an
    account in the same order agree on every id, regardless of what any
    *other* account did in between (the property sharded runs rely on).
    """

    #: Tag baked into minted ids (the account address; set by
    #: :class:`~repro.webmail.account.WebmailAccount`).  The default
    #: keeps bare ``Mailbox()`` construction working in tests.
    owner: str = "local"
    _folders: dict[Folder, list[EmailMessage]] = field(
        default_factory=lambda: {folder: [] for folder in Folder}
    )
    _index: dict[str, tuple[Folder, EmailMessage]] = field(
        default_factory=dict
    )
    _changelog: list[MailboxChange] = field(default_factory=list)
    _minted: int = 0

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    _ADD_CHANGE_KINDS = {
        Folder.INBOX: "received",
        Folder.DRAFTS: "draft_created",
        Folder.SENT: "sent",
    }

    def add(self, folder: Folder, message: EmailMessage) -> EmailMessage:
        """File ``message`` under ``folder`` and index it by id.

        Messages without an id (freshly constructed) are assigned one
        from this mailbox's counter; messages already filed elsewhere
        (e.g. a send delivered to several recipients) keep theirs.
        """
        if not message.message_id:
            self._minted += 1
            message.message_id = f"msg-{self.owner}-{self._minted:06d}"
        self._folders[folder].append(message)
        self._index[message.message_id] = (folder, message)
        kind = self._ADD_CHANGE_KINDS.get(folder)
        if kind is not None:
            self._changelog.append(MailboxChange(kind, message.message_id))
        return message

    def get(self, message_id: str) -> EmailMessage:
        """Look up a message by id.

        Raises:
            NoSuchMessageError: when the id is unknown.
        """
        try:
            return self._index[message_id][1]
        except KeyError as exc:
            raise NoSuchMessageError(message_id) from exc

    def folder_of(self, message_id: str) -> Folder:
        """The folder currently holding ``message_id``."""
        try:
            return self._index[message_id][0]
        except KeyError as exc:
            raise NoSuchMessageError(message_id) from exc

    def move(self, message_id: str, destination: Folder) -> None:
        """Move a message between folders (e.g. Drafts -> Sent)."""
        folder, message = self._index[message_id]
        self._folders[folder].remove(message)
        self._folders[destination].append(message)
        self._index[message_id] = (destination, message)
        if destination is Folder.SENT:
            self._changelog.append(MailboxChange("sent", message_id))

    def remove(self, message_id: str) -> EmailMessage:
        """Delete a message outright (used when drafts are discarded)."""
        try:
            folder, message = self._index.pop(message_id)
        except KeyError as exc:
            raise NoSuchMessageError(message_id) from exc
        self._folders[folder].remove(message)
        return message

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def messages(self, folder: Folder) -> tuple[EmailMessage, ...]:
        """Messages in a folder, oldest first."""
        return tuple(self._folders[folder])

    def all_messages(self) -> Iterator[EmailMessage]:
        """Every message across folders, in storage order."""
        for folder in Folder:
            yield from self._folders[folder]

    def unread_count(self) -> int:
        """Unread messages in the inbox (boldface in the UI)."""
        return sum(
            1 for m in self._folders[Folder.INBOX] if not m.flags.read
        )

    def starred_messages(self) -> tuple[EmailMessage, ...]:
        """All starred messages across folders."""
        return tuple(m for m in self.all_messages() if m.flags.starred)

    def count(self, folder: Folder | None = None) -> int:
        """Number of messages in ``folder``, or in the whole mailbox."""
        if folder is None:
            return len(self._index)
        return len(self._folders[folder])

    # ------------------------------------------------------------------
    # message-level actions (invoked through the service layer)
    # ------------------------------------------------------------------
    def mark_read(self, message_id: str) -> EmailMessage:
        message = self.get(message_id)
        if not message.flags.read:
            message.flags.read = True
            self._changelog.append(MailboxChange("read", message_id))
        return message

    def star(self, message_id: str) -> EmailMessage:
        message = self.get(message_id)
        if not message.flags.starred:
            message.flags.starred = True
            self._changelog.append(MailboxChange("starred", message_id))
        return message

    def unstar(self, message_id: str) -> EmailMessage:
        message = self.get(message_id)
        message.flags.starred = False
        return message

    def apply_label(self, message_id: str, label: str) -> EmailMessage:
        message = self.get(message_id)
        message.labels.add(label)
        return message

    def snapshot(self) -> dict[str, dict]:
        """Snapshot of every message's monitored state, keyed by id.

        Equivalent to what the honey Apps Script would rebuild on each
        scan; kept for tests that validate the changelog against a full
        diff.
        """
        return {
            m.message_id: m.snapshot() for m in self.all_messages()
        }

    @property
    def changelog_length(self) -> int:
        """Total number of changes recorded so far."""
        return len(self._changelog)

    def changes_since(self, cursor: int) -> tuple[list[MailboxChange], int]:
        """Changes recorded after ``cursor``; returns (changes, new_cursor).

        The monitoring script keeps its own cursor, so each 10-minute scan
        costs O(changes since last scan).
        """
        changes = self._changelog[cursor:]
        return changes, len(self._changelog)
