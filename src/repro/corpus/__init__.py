"""Synthetic corporate-email corpus and honey-identity generation.

The paper seeds its 100 honey accounts with the public Enron corpus after a
remapping pass (names swapped for honey personas, "Enron" replaced with a
fictitious company, dates refreshed).  The real corpus is unavailable
offline, so ``enron`` generates a statistically similar corporate corpus
for a fictitious energy company, and ``mapping`` applies the same
remapping pipeline the paper describes.
"""

from repro.corpus.enron import CorpusGenerator, GeneratedEmail
from repro.corpus.identity import HoneyIdentity, IdentityFactory
from repro.corpus.mapping import CorpusMapper, MappingConfig
from repro.corpus.names import random_identity_name
from repro.corpus.text import (
    DEFAULT_MIN_WORD_LENGTH,
    HEADER_WORDS,
    STOPWORDS,
    filter_terms,
    tokenize,
)

__all__ = [
    "CorpusGenerator",
    "CorpusMapper",
    "DEFAULT_MIN_WORD_LENGTH",
    "GeneratedEmail",
    "HEADER_WORDS",
    "HoneyIdentity",
    "IdentityFactory",
    "MappingConfig",
    "STOPWORDS",
    "filter_terms",
    "random_identity_name",
    "tokenize",
]
