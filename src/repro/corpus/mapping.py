"""Corpus remapping: make generated emails belong to a honey persona.

The paper maps distinct Enron recipients onto the fictional honey persona,
replaces first/last names, swaps "Enron" for a fictitious company name, and
refreshes all dates "to reflect the time in which the accounts were
populated".  :class:`CorpusMapper` applies the same pipeline to the
synthetic corpus.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone

from repro.errors import ConfigurationError
from repro.corpus.enron import GeneratedEmail
from repro.corpus.identity import COMPANY_NAME, HoneyIdentity


@dataclass(frozen=True)
class MappingConfig:
    """Parameters of the remapping pass.

    Attributes:
        company_name: fictitious company replacing the corpus company.
        populate_time: the wall-clock moment accounts are populated; the
            corpus timeline is shifted so its newest email lands shortly
            before this time.
        history_span_days: how far back the remapped mailbox history runs.
    """

    company_name: str = COMPANY_NAME
    populate_time: datetime = datetime(2015, 6, 20, tzinfo=timezone.utc)
    history_span_days: float = 540.0

    def __post_init__(self) -> None:
        if self.history_span_days <= 0:
            raise ConfigurationError("history_span_days must be positive")
        if self.populate_time.tzinfo is None:
            raise ConfigurationError("populate_time must be timezone-aware")


@dataclass(frozen=True)
class MappedEmail:
    """A corpus email rewritten to belong to a honey persona's mailbox."""

    sender_name: str
    sender_address: str
    recipient_name: str
    recipient_address: str
    subject: str
    body: str
    sent_at: datetime
    topic: str

    @property
    def text(self) -> str:
        return f"{self.subject}\n{self.body}"


class CorpusMapper:
    """Rewrites generated emails into a honey persona's mailbox.

    A stable cast of correspondent personas is minted per mailbox so the
    same corpus character always maps to the same fake correspondent, as in
    the paper's recipient mapping.
    """

    def __init__(
        self,
        identity: HoneyIdentity,
        config: MappingConfig,
        rng: random.Random,
    ) -> None:
        self._identity = identity
        self._config = config
        self._rng = rng
        self._name_map: dict[str, tuple[str, str]] = {}
        self._company_re: re.Pattern[str] | None = None

    def _map_character(self, corpus_name: str) -> tuple[str, str]:
        """Map a corpus character to a stable (name, address) pair."""
        if corpus_name not in self._name_map:
            first = corpus_name.split()[0]
            alias_last = self._rng.choice(
                ("Hart", "Brooks", "Foster", "Hayes", "Reyes", "Warren",
                 "Dunn", "Pierce", "Sharp", "Boyd")
            )
            full = f"{first} {alias_last}"
            address = (
                f"{first.lower()}.{alias_last.lower()}@"
                f"{self._config.company_name.lower()}-corp.com"
            )
            self._name_map[corpus_name] = (full, address)
        return self._name_map[corpus_name]

    def _rewrite_company(self, text: str, original_company: str) -> str:
        if self._company_re is None:
            self._company_re = re.compile(
                re.escape(original_company), re.IGNORECASE
            )
        return self._company_re.sub(self._config.company_name, text)

    def _shift_time(
        self, sent_at: datetime, corpus_min: datetime, corpus_max: datetime
    ) -> datetime:
        """Linearly map the corpus timeline onto the recent history window."""
        span = (corpus_max - corpus_min).total_seconds()
        if span <= 0:
            fraction = 1.0
        else:
            fraction = (sent_at - corpus_min).total_seconds() / span
        window = timedelta(days=self._config.history_span_days)
        start = self._config.populate_time - window
        return start + fraction * window

    def map_mailbox(
        self, emails: list[GeneratedEmail], original_company: str
    ) -> list[MappedEmail]:
        """Rewrite a whole generated mailbox for this persona.

        Every corpus email becomes mail *received by* the persona: the
        corpus recipient is replaced by the honey identity, senders become
        stable fake correspondents, company mentions are rewritten, and
        dates are refreshed into the recent-history window.
        """
        if not emails:
            return []
        corpus_min = min(e.sent_at for e in emails)
        corpus_max = max(e.sent_at for e in emails)
        mapped: list[MappedEmail] = []
        for email in emails:
            sender_name, sender_address = self._map_character(
                email.sender_name
            )
            subject = self._rewrite_company(email.subject, original_company)
            body = self._rewrite_company(email.body, original_company)
            body = body.replace(email.sender_name, sender_name)
            body = body.replace(
                email.recipient_name, self._identity.full_name
            )
            mapped.append(
                MappedEmail(
                    sender_name=sender_name,
                    sender_address=sender_address,
                    recipient_name=self._identity.full_name,
                    recipient_address=self._identity.address,
                    subject=subject,
                    body=body,
                    sent_at=self._shift_time(
                        email.sent_at, corpus_min, corpus_max
                    ),
                    topic=email.topic,
                )
            )
        mapped.sort(key=lambda e: e.sent_at)
        return mapped
