"""Synthetic corporate-email corpus generator.

Stands in for the public Enron dataset (Klimt & Yang, CEAS 2004), which is
not available offline.  The generator produces business emails for a
fictitious energy company with the statistical properties the paper's
analysis needs: a heavy core of business vocabulary shared by all topics,
and a thin tail of finance/personal-sensitive emails that search-driven
attackers ("gold diggers") can surface.

Emails are plain data (:class:`GeneratedEmail`); the mapping layer turns
them into mailbox-ready messages for each honey account.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone

from repro.errors import ConfigurationError
from repro.corpus import wordbank
from repro.corpus.names import FIRST_NAMES, LAST_NAMES

#: Corpus "original" timeframe (pre-remapping), echoing Enron's 1999-2002.
_CORPUS_START = datetime(2000, 1, 3, 8, 0, tzinfo=timezone.utc)
_CORPUS_SPAN_DAYS = 700

_SUBJECT_TEMPLATES: tuple[str, ...] = (
    "RE: {topic_word} {core_word} for {counterparty}",
    "{core_word} {topic_word} update",
    "FW: {topic_word} {core_word}",
    "{counterparty} {topic_word} review",
    "Action needed: {topic_word} {core_word}",
    "{core_word} schedule for {counterparty}",
)

_OPENINGS: tuple[str, ...] = (
    "Please review the {core_word} {topic_word} attached to this email.",
    "Following our meeting about the {topic_word}, here is the {core_word}.",
    "I wanted to give you an update about the {counterparty} {topic_word}.",
    "The {topic_word} {core_word} from {counterparty} came in this morning.",
    "As discussed, the {core_word} for the {topic_word} would be ready soon.",
)

_BODY_TEMPLATES: tuple[str, ...] = (
    "The {topic_word} group would like more information about the "
    "{core_word} before the original deadline.",
    "Our company needs the {core_word} numbers for the {topic_word} "
    "transfer by Thursday.",
    "Energy prices moved again, so the {topic_word} {core_word} should be "
    "revised before we transfer the position.",
    "Please provide the original {core_word} so the {topic_word} team can "
    "complete the review.",
    "I attached the {core_word} about the {counterparty} {topic_word} for "
    "your information.",
    "The power desk asked about the {topic_word} {core_word}; please "
    "forward any information you have.",
    "Would you confirm the {core_word} details so we can update the "
    "{topic_word} schedule?",
    "This email includes the {topic_word} {core_word} that {counterparty} "
    "requested about the agreement.",
)

_CLOSINGS: tuple[str, ...] = (
    "Please let me know if you would like to discuss.",
    "Thanks for your help with the {topic_word}.",
    "I will forward more information about the {core_word} tomorrow.",
    "Please call my office about any question.",
)

_COUNTERPARTIES: tuple[str, ...] = (
    "Westgate", "Calpine", "Dynegy", "Sempra", "Entergy", "Duke",
    "Mirant", "Reliant", "Aquila", "TransAlta",
)


@dataclass(frozen=True)
class GeneratedEmail:
    """One synthetic corpus email, before honey-account remapping."""

    sender_name: str
    recipient_name: str
    subject: str
    body: str
    sent_at: datetime
    topic: str

    @property
    def text(self) -> str:
        """Subject + body, the text the TF-IDF analysis consumes."""
        return f"{self.subject}\n{self.body}"


@dataclass
class CorpusStats:
    """Aggregate statistics for a generated corpus (used in tests)."""

    email_count: int = 0
    topic_counts: dict[str, int] = field(default_factory=dict)


class CorpusGenerator:
    """Generates deterministic synthetic corporate email.

    Args:
        rng: the randomness stream; a fixed seed yields a fixed corpus.
        company: company name woven into email bodies (pre-remapping this
            is the stand-in for "Enron"; the mapper replaces it).
    """

    def __init__(self, rng: random.Random, company: str = "Enrova") -> None:
        self._rng = rng
        self.company = company
        self._topic_names = wordbank.topic_names()
        self._topic_weights = wordbank.topic_weights()
        self._characters = [
            f"{first} {last}"
            for first, last in zip(FIRST_NAMES[:30], LAST_NAMES[:30])
        ]

    def _fill(self, template: str, topic_vocab: tuple[str, ...]) -> str:
        return template.format(
            topic_word=self._rng.choice(topic_vocab),
            core_word=self._rng.choice(wordbank.CORE_BUSINESS),
            counterparty=self._rng.choice(_COUNTERPARTIES),
        )

    def _sentence_pool(
        self, topic: str, topic_vocab: tuple[str, ...]
    ) -> list[str]:
        sentences = [self._fill(t, topic_vocab) for t in _BODY_TEMPLATES]
        # Topic flavour: sprinkle extra topic/filler terms as short notes.
        extra_terms = self._rng.sample(
            list(topic_vocab) + list(wordbank.GENERAL_FILLER), k=4
        )
        sentences.append(
            "Notes: " + ", ".join(sorted(extra_terms)) + "."
        )
        if topic == "finance":
            sentences.append(
                "The payment account results are listed below the "
                "statement summary."
            )
        if topic == "personal":
            sentences.append(
                "Hope the family is doing great; see everyone at the "
                "birthday party."
            )
        return sentences

    def generate_email(self) -> GeneratedEmail:
        """Generate a single email with a weighted-random topic."""
        topic = self._rng.choices(
            self._topic_names, weights=self._topic_weights, k=1
        )[0]
        return self.generate_email_for_topic(topic)

    def generate_email_for_topic(self, topic: str) -> GeneratedEmail:
        """Generate a single email with the given topic."""
        if topic not in self._topic_names:
            raise ConfigurationError(f"unknown topic {topic!r}")
        vocab = wordbank.topic_vocabulary(topic)
        sender = self._rng.choice(self._characters)
        recipient = self._rng.choice(
            [c for c in self._characters if c != sender]
        )
        subject = self._fill(self._rng.choice(_SUBJECT_TEMPLATES), vocab)
        opening = self._fill(self._rng.choice(_OPENINGS), vocab)
        pool = self._sentence_pool(topic, vocab)
        n_sentences = self._rng.randrange(3, 7)
        chosen = self._rng.sample(pool, k=min(n_sentences, len(pool)))
        closing = self._fill(self._rng.choice(_CLOSINGS), vocab)
        body_lines = [opening, *chosen, closing]
        body = "\n".join(body_lines)
        body += f"\n{sender}\n{self.company} Corporation"
        offset_days = self._rng.uniform(0, _CORPUS_SPAN_DAYS)
        sent_at = _CORPUS_START + timedelta(days=offset_days)
        return GeneratedEmail(
            sender_name=sender,
            recipient_name=recipient,
            subject=subject,
            body=body,
            sent_at=sent_at,
            topic=topic,
        )

    def generate_mailbox(self, email_count: int) -> list[GeneratedEmail]:
        """Generate a mailbox-sized batch sorted by send time.

        Raises:
            ConfigurationError: if ``email_count`` is not positive.
        """
        if email_count <= 0:
            raise ConfigurationError("email_count must be positive")
        emails = [self.generate_email() for _ in range(email_count)]
        emails.sort(key=lambda e: e.sent_at)
        return emails

    @staticmethod
    def stats(emails: list[GeneratedEmail]) -> CorpusStats:
        """Compute aggregate statistics over generated emails."""
        stats = CorpusStats(email_count=len(emails))
        for email in emails:
            stats.topic_counts[email.topic] = (
                stats.topic_counts.get(email.topic, 0) + 1
            )
        return stats
