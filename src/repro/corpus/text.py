"""Tokenisation and term filtering for the TF-IDF analysis.

Section 4.6 of the paper preprocesses the corpus by "filtering out all
words that have less than 5 characters, and removing all known
header-related words ... honey email handles, and also removing signaling
information that our monitoring infrastructure introduced".  This module
implements that exact pipeline.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

#: Minimum word length retained by the paper's preprocessing.
DEFAULT_MIN_WORD_LENGTH = 5

#: Email-header vocabulary stripped before TF-IDF (the paper names
#: "delivered" and "charset" as examples).
HEADER_WORDS: frozenset[str] = frozenset(
    {
        "delivered", "charset", "content", "subject", "received",
        "message", "mailto", "return", "sender", "recipient",
        "encoding", "priority", "boundary", "multipart", "quoted",
        "printable", "mimeversion", "references", "header", "headers",
        "xmailer", "inreplyto",
    }
)

#: Monitoring-infrastructure signalling tokens injected by the honey
#: scripts; stripped like the paper strips its own signalling.
SIGNAL_WORDS: frozenset[str] = frozenset(
    {
        "honeynotify", "heartbeat", "monitorid", "scriptmarker",
        "notification",
    }
)

#: Short English stopwords; mostly redundant with the length filter but
#: kept for terms of exactly five+ characters that carry no signal.
STOPWORDS: frozenset[str] = frozenset(
    {
        "there", "their", "these", "those", "where", "which", "while",
        "after", "before", "being", "because", "could", "should",
        "other", "between", "under", "through",
    }
)

_TOKEN_RE = re.compile(r"[a-z]+")

#: min_length -> compiled ``[a-z]{min_length,}`` pattern.  Because
#: ``[a-z]+`` matches maximal runs, a run of length >= n is matched
#: identically by ``[a-z]{n,}`` — so length filtering can happen inside
#: the regex scan instead of per token.
_SIZED_TOKEN_RES: dict[int, re.Pattern] = {}


def _sized_token_re(min_length: int) -> re.Pattern:
    pattern = _SIZED_TOKEN_RES.get(min_length)
    if pattern is None:
        pattern = _SIZED_TOKEN_RES[min_length] = re.compile(
            r"[a-z]{%d,}" % max(min_length, 1)
        )
    return pattern


def tokenize(text: str) -> list[str]:
    """Lowercase ``text`` and extract alphabetic word tokens."""
    return _TOKEN_RE.findall(text.lower())


def filter_terms(
    tokens: Iterable[str],
    *,
    min_length: int = DEFAULT_MIN_WORD_LENGTH,
    extra_exclusions: Iterable[str] = (),
) -> Iterator[str]:
    """Apply the paper's preprocessing filters to a token stream.

    Drops tokens shorter than ``min_length``, header-related words,
    monitoring-signal words, stopwords, and anything in
    ``extra_exclusions`` (used for honey email handles).
    """
    exclusions = HEADER_WORDS | SIGNAL_WORDS | STOPWORDS
    exclusions |= {term.lower() for term in extra_exclusions}
    for token in tokens:
        if len(token) < min_length:
            continue
        if token in exclusions:
            continue
        yield token


def prepare_document(
    texts: Iterable[str],
    *,
    min_length: int = DEFAULT_MIN_WORD_LENGTH,
    extra_exclusions: Iterable[str] = (),
) -> list[str]:
    """Tokenise and filter a set of texts into one term list (a document).

    The TF-IDF analysis treats "all emails" and "read emails" each as one
    document; this helper builds those documents.

    One pass: the exclusion set is built once (not per text, which
    dominated ``analyze()`` wall-clock — honey-handle exclusion lists run
    to hundreds of tokens), and the texts are joined with a newline — a
    non-token character, so the token stream is identical to tokenising
    each text separately — for a single regex scan.
    """
    exclusions = HEADER_WORDS | SIGNAL_WORDS | STOPWORDS
    exclusions |= {term.lower() for term in extra_exclusions}
    tokens = _sized_token_re(min_length).findall("\n".join(texts).lower())
    return [token for token in tokens if token not in exclusions]
