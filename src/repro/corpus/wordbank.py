"""Vocabulary banks for the synthetic corporate corpus.

The word banks are engineered so the corpus reproduces the statistical
structure Table 2 depends on:

* ``CORE_BUSINESS`` words ("transfer", "please", "company", "energy",
  "power", ...) pervade the whole corpus — they dominate tfidf_A;
* ``SENSITIVE_FINANCIAL`` and ``SENSITIVE_PERSONAL`` words ("payment",
  "account", "seller", "family", ...) are rare overall but concentrated in
  a small fraction of emails — exactly the emails gold-digger searches
  surface, which drives tfidf_R − tfidf_A positive for them;
* ``BITCOIN_TERMS`` never occur in the seeded corpus (the paper notes the
  Enron dataset predates Bitcoin); they enter via blackmailer drafts.
"""

from __future__ import annotations

#: Words pervading every topic; candidates for top-tfidf_A (Table 2 right).
CORE_BUSINESS: tuple[str, ...] = (
    "transfer", "please", "original", "company", "would", "energy",
    "information", "about", "email", "power", "market", "contract",
    "schedule", "meeting", "report", "project", "agreement", "review",
    "update", "request",
)

#: Rare, finance-sensitive words gold diggers hunt for (Table 2 left).
SENSITIVE_FINANCIAL: tuple[str, ...] = (
    "payment", "account", "seller", "results", "below", "listed",
    "invoice", "statement", "balance", "wires", "credit", "banking",
    "password", "credentials", "routing", "deposit",
)

#: Rare personal words (the "family" cluster in Table 2).
SENSITIVE_PERSONAL: tuple[str, ...] = (
    "family", "personal", "vacation", "birthday", "address", "phone",
    "mother", "sister", "wedding", "insurance",
)

#: Introduced only by the Ashley-Madison blackmailer case study.
BITCOIN_TERMS: tuple[str, ...] = (
    "bitcoin", "bitcoins", "localbitcoins", "wallet", "ransom",
)

#: Filler verbs/objects for sentence templates (all >= 5 chars so they
#: survive the paper's length filter and add realistic bulk).
GENERAL_FILLER: tuple[str, ...] = (
    "discuss", "attached", "regarding", "forward", "confirm", "receive",
    "provide", "complete", "approve", "deliver", "support", "system",
    "office", "number", "detail", "question", "change", "issue",
    "morning", "afternoon", "tomorrow", "yesterday", "group", "team",
    "customer", "service", "price", "volume", "supply", "demand",
)

#: Topic definitions: (name, base weight, topic-specific vocabulary).
#: Weights control how often each topic is drawn for an email.
TOPICS: tuple[tuple[str, float, tuple[str, ...]], ...] = (
    (
        "trading",
        0.30,
        (
            "trading", "position", "curve", "settle", "desk", "hedge",
            "gas", "megawatt", "pipeline", "capacity", "nomination",
        ),
    ),
    (
        "operations",
        0.25,
        (
            "outage", "plant", "turbine", "maintenance", "grid",
            "transmission", "generation", "station", "dispatch",
        ),
    ),
    (
        "corporate",
        0.20,
        (
            "board", "legal", "counsel", "policy", "filing", "audit",
            "compliance", "merger", "restructure", "announcement",
        ),
    ),
    (
        "scheduling",
        0.13,
        (
            "calendar", "conference", "travel", "flight", "hotel",
            "agenda", "minutes", "location", "available", "reschedule",
        ),
    ),
    (
        "finance",
        0.07,
        SENSITIVE_FINANCIAL,
    ),
    (
        "personal",
        0.05,
        SENSITIVE_PERSONAL,
    ),
)


def topic_names() -> tuple[str, ...]:
    """Names of all corpus topics, in definition order."""
    return tuple(name for name, _, _ in TOPICS)


def topic_weights() -> tuple[float, ...]:
    """Sampling weights aligned with :func:`topic_names`."""
    return tuple(weight for _, weight, _ in TOPICS)


def topic_vocabulary(name: str) -> tuple[str, ...]:
    """Topic-specific vocabulary for ``name``.

    Raises:
        KeyError: if the topic is unknown.
    """
    for topic, _, vocab in TOPICS:
        if topic == name:
            return vocab
    raise KeyError(f"unknown topic {name!r}; known: {topic_names()}")
