"""Popular first and last names for honey personas.

The paper assigns each honey account "random combinations of popular first
and last names" (following Stringhini et al., ACSAC 2010).  These lists are
drawn from public name-frequency data.
"""

from __future__ import annotations

import random

FIRST_NAMES: tuple[str, ...] = (
    "James", "John", "Robert", "Michael", "William", "David", "Richard",
    "Joseph", "Thomas", "Charles", "Christopher", "Daniel", "Matthew",
    "Anthony", "Donald", "Mark", "Paul", "Steven", "Andrew", "Kenneth",
    "George", "Joshua", "Kevin", "Brian", "Edward", "Ronald", "Timothy",
    "Jason", "Jeffrey", "Ryan", "Mary", "Patricia", "Jennifer", "Linda",
    "Elizabeth", "Barbara", "Susan", "Jessica", "Sarah", "Karen", "Nancy",
    "Lisa", "Margaret", "Betty", "Sandra", "Ashley", "Dorothy", "Kimberly",
    "Emily", "Donna", "Michelle", "Carol", "Amanda", "Melissa", "Deborah",
    "Stephanie", "Rebecca", "Laura", "Sharon", "Cynthia",
)

LAST_NAMES: tuple[str, ...] = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Parker",
    "Collins", "Edwards", "Stewart", "Morris", "Murphy",
)


def random_identity_name(rng: random.Random) -> tuple[str, str]:
    """Draw a (first, last) name pair uniformly from the popular-name lists."""
    return rng.choice(FIRST_NAMES), rng.choice(LAST_NAMES)


def handle_for(first: str, last: str, suffix: int | None = None) -> str:
    """Build an email local-part from a name, optionally disambiguated.

    Example:
        >>> handle_for("Mary", "Walker", 7)
        'mary.walker7'
    """
    base = f"{first.lower()}.{last.lower()}"
    if suffix is None:
        return base
    return f"{base}{suffix}"
