"""Honey personas: the fictional owners of the honey accounts.

Each honey account belongs to a fictional employee of a fictitious energy
company.  Some leaks advertise the persona's home location (near London or
in the US Midwest) and a date of birth — Section 3.2 of the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date

from repro.errors import ConfigurationError
from repro.corpus.names import handle_for, random_identity_name
from repro.netsim.cities import City, cities_in_region

#: The fictitious company replacing "Enron" in the seeded corpus.
COMPANY_NAME = "Lumenor"
COMPANY_DOMAIN = "lumenor-corp.com"

#: The webmail domain honey accounts live on (simulated Gmail).
WEBMAIL_DOMAIN = "gmail.example"


@dataclass(frozen=True)
class HoneyIdentity:
    """A fictional persona owning one honey account."""

    first_name: str
    last_name: str
    handle: str
    address: str
    home_city: City | None
    date_of_birth: date

    @property
    def full_name(self) -> str:
        return f"{self.first_name} {self.last_name}"

    @property
    def corporate_address(self) -> str:
        """The persona's address at the fictitious company."""
        return f"{self.handle}@{COMPANY_DOMAIN}"


class IdentityFactory:
    """Deterministically mints unique honey personas.

    Args:
        rng: source of randomness (derived stream).
        home_region: optional region bucket (``"uk"`` / ``"us_midwest"``)
            from which to draw an advertised home city; ``None`` leaves the
            persona without advertised location, matching the no-location
            leak groups.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used_handles: set[str] = set()

    def create(self, home_region: str | None = None) -> HoneyIdentity:
        """Mint a new persona; handles are unique across the factory."""
        first, last = random_identity_name(self._rng)
        handle = handle_for(first, last)
        if handle in self._used_handles:
            suffix = self._rng.randrange(10, 99)
            handle = handle_for(first, last, suffix)
            attempts = 0
            while handle in self._used_handles:
                attempts += 1
                if attempts > 1000:
                    raise ConfigurationError("handle space exhausted")
                suffix = self._rng.randrange(10, 9999)
                handle = handle_for(first, last, suffix)
        self._used_handles.add(handle)
        home_city = None
        if home_region is not None:
            home_city = self._rng.choice(list(cities_in_region(home_region)))
        birth_year = self._rng.randrange(1960, 1995)
        birth_month = self._rng.randrange(1, 13)
        birth_day = self._rng.randrange(1, 28)
        return HoneyIdentity(
            first_name=first,
            last_name=last,
            handle=handle,
            address=f"{handle}@{WEBMAIL_DOMAIN}",
            home_city=home_city,
            date_of_birth=date(birth_year, birth_month, birth_day),
        )

    def create_many(
        self, count: int, home_region: str | None = None
    ) -> list[HoneyIdentity]:
        """Mint ``count`` personas sharing a home region policy."""
        return [self.create(home_region) for _ in range(count)]
