"""Exception hierarchy shared across the ``repro`` package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without masking programming errors such as
``TypeError`` or ``KeyError`` raised by genuine bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised for invalid operations on the discrete-event engine."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or on a closed engine."""


class WebmailError(ReproError):
    """Base class for webmail-service failures."""


class AuthenticationError(WebmailError):
    """Raised when a login attempt presents invalid credentials."""


class AccountBlockedError(WebmailError):
    """Raised when operating on an account suspended by anti-abuse."""

    def __init__(self, address: str, reason: str = "terms-of-service") -> None:
        super().__init__(f"account {address} is blocked ({reason})")
        self.address = address
        self.reason = reason


class NoSuchAccountError(WebmailError):
    """Raised when an operation references an unknown account address."""


class NoSuchMessageError(WebmailError):
    """Raised when an operation references an unknown message id."""


class SessionError(WebmailError):
    """Raised when a session token is invalid, expired, or revoked."""


class QuotaExceededError(WebmailError):
    """Raised when an Apps Script exceeds its execution-time quota."""


class LeakError(ReproError):
    """Raised for invalid leak-outlet operations."""


class SandboxError(ReproError):
    """Raised by the malware sandbox infrastructure."""


class AnalysisError(ReproError):
    """Raised when the analysis pipeline receives inconsistent data."""


class ConfigurationError(ReproError):
    """Raised when an experiment configuration is internally inconsistent."""


class SweepError(ReproError):
    """Raised when a strict sweep has cells that exhausted their retries."""


class ServiceError(ReproError):
    """Raised for live-service failures (ingest, WAL, checkpointing)."""


class ValidationError(ServiceError):
    """Raised when an ingested event does not match the wire schema."""


class DegradedError(ServiceError):
    """Raised when the service cannot durably journal an event.

    The HTTP layer maps this to 503 so callers can back off and retry;
    the event that triggered it was **not** applied to state.
    """


class FaultInjectedError(ReproError):
    """Raised when a fault plan is malformed or a fault site cannot
    perform the injection it was asked for (never on the fault-free
    path)."""


class SupervisionError(ReproError):
    """Raised when a supervised worker exhausts its retry budget —
    crashed, hung, or timed out more times than the caller allowed."""
