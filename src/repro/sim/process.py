"""Recurring processes on the simulation timeline.

The monitoring infrastructure in the paper is built from periodic jobs: the
Apps Script scan fires every 10 minutes, the heartbeat once a day, and the
activity-page scraper on its own cadence.  :class:`PeriodicProcess` captures
that pattern once: a callback re-scheduled at a fixed period, with optional
jitter so concurrent processes do not fire in lockstep.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import SchedulingError
from repro.sim.engine import Simulator
from repro.sim.events import Event


class PeriodicProcess:
    """A callback that fires every ``period`` seconds until stopped.

    Args:
        sim: the simulator to schedule on.
        period: interval between firings, in sim-seconds.
        callback: zero-argument callable invoked at each tick.
        start_delay: delay before the first firing (default one period).
        jitter: maximum +/- uniform jitter applied to each interval.
        rng: RNG used for jitter; required when ``jitter`` > 0.
        label: label attached to scheduled events.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        start_delay: float | None = None,
        jitter: float = 0.0,
        rng: random.Random | None = None,
        label: str = "periodic",
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        if jitter < 0:
            raise SchedulingError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and rng is None:
            raise SchedulingError("jitter requires an explicit rng")
        if jitter >= period:
            raise SchedulingError("jitter must be smaller than the period")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng
        self._label = label
        self._event: Event | None = None
        self._stopped = False
        self.ticks = 0
        first_delay = self._period if start_delay is None else float(start_delay)
        self._event = sim.schedule(first_delay, self._fire, label=label)

    @property
    def period(self) -> float:
        return self._period

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _next_interval(self) -> float:
        if self._jitter <= 0:
            return self._period
        assert self._rng is not None
        return self._period + self._rng.uniform(-self._jitter, self._jitter)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        try:
            self._callback()
        finally:
            if not self._stopped:
                self._event = self._sim.schedule(
                    self._next_interval(), self._fire, label=self._label
                )

    def stop(self) -> None:
        """Stop the process; pending ticks are cancelled (idempotent)."""
        self._stopped = True
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None
