"""Recurring processes on the simulation timeline.

The monitoring infrastructure in the paper is built from periodic jobs: the
Apps Script scan fires every 10 minutes, the heartbeat once a day, and the
activity-page scraper on its own cadence.  :class:`PeriodicProcess` captures
that pattern once: a callback re-scheduled at a fixed period, with optional
jitter so concurrent processes do not fire in lockstep.

:class:`PeriodicBatch` is the calendar-batched variant for the hot path:
hundreds of same-cadence, same-phase jobs (one monitor scan per honey
account) share **one** heap event per tick instead of one each, and the
tick iterates members in join order.  Because every member of a batch
would have fired at the same instant anyway — and re-scheduled itself in
the same relative order — collapsing them is observationally identical to
running one :class:`PeriodicProcess` per member, while shrinking the
event queue by the membership factor.  Jittered processes cannot share a
tick and keep using :class:`PeriodicProcess`.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import SchedulingError
from repro.sim.engine import Simulator
from repro.sim.events import Event


class PeriodicProcess:
    """A callback that fires every ``period`` seconds until stopped.

    Args:
        sim: the simulator to schedule on.
        period: interval between firings, in sim-seconds.
        callback: zero-argument callable invoked at each tick.
        start_delay: delay before the first firing (default one period).
        jitter: maximum +/- uniform jitter applied to each interval.
        rng: RNG used for jitter; required when ``jitter`` > 0.
        label: label attached to scheduled events.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        start_delay: float | None = None,
        jitter: float = 0.0,
        rng: random.Random | None = None,
        label: str = "periodic",
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        if jitter < 0:
            raise SchedulingError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and rng is None:
            raise SchedulingError("jitter requires an explicit rng")
        if jitter >= period:
            raise SchedulingError("jitter must be smaller than the period")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng
        self._label = label
        self._event: Event | None = None
        self._stopped = False
        self.ticks = 0
        first_delay = self._period if start_delay is None else float(start_delay)
        self._event = sim.schedule(first_delay, self._fire, label=label)

    @property
    def period(self) -> float:
        return self._period

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _next_interval(self) -> float:
        if self._jitter <= 0:
            return self._period
        assert self._rng is not None
        return self._period + self._rng.uniform(-self._jitter, self._jitter)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        try:
            self._callback()
        finally:
            if not self._stopped:
                self._event = self._sim.schedule(
                    self._next_interval(), self._fire, label=self._label
                )

    def stop(self) -> None:
        """Stop the process; pending ticks are cancelled (idempotent)."""
        self._stopped = True
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None


class BatchMember:
    """One callback enrolled in a :class:`PeriodicBatch` (a stop handle)."""

    __slots__ = ("callback", "stopped", "_batch")

    def __init__(self, batch: "PeriodicBatch", callback: Callable[[], None]):
        self.callback = callback
        self.stopped = False
        self._batch = batch

    def stop(self) -> None:
        """Remove this member from its batch (idempotent)."""
        if not self.stopped:
            self.stopped = True
            self._batch._member_stopped()


class PeriodicBatch:
    """Many same-cadence callbacks sharing one heap event per tick.

    Fire times follow exactly the :class:`PeriodicProcess` arithmetic
    (``first = now + start_delay``, then ``next = fired_time + period``),
    and members run in join order — the order their individual events
    would have popped off the heap by sequence number.  A member added
    mid-run joins at the *next* tick, which is also when its own
    first event would have fired if, and only if, its first fire time
    matches the batch's pending tick (:meth:`matches` checks that).

    Args:
        sim: the simulator to schedule on.
        period: interval between ticks, in sim-seconds.
        start_delay: delay before the first tick (default one period).
        label: label attached to the shared scheduled events.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        *,
        start_delay: float | None = None,
        label: str = "periodic-batch",
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = float(period)
        self._label = label
        self._members: list[BatchMember] = []
        self._live_members = 0
        self._stopped = False
        self.ticks = 0
        first_delay = self._period if start_delay is None else float(start_delay)
        self._event: Event | None = sim.schedule(
            first_delay, self._fire, label=label
        )

    @property
    def period(self) -> float:
        return self._period

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def next_time(self) -> float | None:
        """Absolute sim-time of the pending tick (``None`` when stopped)."""
        if self._event is None or self._event.cancelled:
            return None
        return self._event.time

    def __len__(self) -> int:
        return self._live_members

    def matches(self, period: float, first_time: float) -> bool:
        """True when a job with this cadence and first fire time can join
        without changing what the heap would have executed."""
        return (
            not self._stopped
            and self.next_time == first_time
            and self._period == float(period)
        )

    def add(self, callback: Callable[[], None]) -> BatchMember:
        """Enrol ``callback``; it fires on every subsequent tick, after
        the members that joined before it."""
        if self._stopped:
            raise SchedulingError("cannot add to a stopped batch")
        member = BatchMember(self, callback)
        self._members.append(member)
        self._live_members += 1
        return member

    def _member_stopped(self) -> None:
        self._live_members -= 1
        if self._live_members <= 0:
            self.stop()

    def _fire(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        members = self._members
        # Per-member error isolation, matching what per-member heap
        # events had: with a simulator error handler installed, one
        # failing callback must not starve the members after it.
        # Without a handler the exception propagates (and aborts the
        # run) exactly as it would from an individual event.
        handler = self._sim.error_handler
        event = self._event
        try:
            for member in members:
                if member.stopped:
                    continue
                if handler is None:
                    member.callback()
                else:
                    try:
                        member.callback()
                    except Exception as exc:  # noqa: BLE001 - routed
                        handler(event, exc)
        finally:
            if len(members) > 2 * self._live_members and self._live_members:
                self._members = [m for m in members if not m.stopped]
            if not self._stopped:
                self._event = self._sim.schedule(
                    self._period, self._fire, label=self._label
                )

    def stop(self) -> None:
        """Stop the whole batch; the pending tick is cancelled (idempotent)."""
        self._stopped = True
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None
