"""The discrete-event simulation engine.

:class:`Simulator` owns the clock and the event queue, and exposes the small
scheduling API the rest of the library is written against: ``schedule`` /
``schedule_at`` / ``run_until``.  Exceptions raised by callbacks propagate by
default so simulation bugs fail loudly; tests can install an error handler
to collect failures instead.
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, Callable

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import Event, EventCallback, EventQueue


class Simulator:
    """Deterministic discrete-event simulator.

    Attributes:
        clock: the shared :class:`SimClock`; components read ``clock.now``.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = SimClock(start_time)
        self._queue = EventQueue()
        self._running = False
        self._events_fired = 0
        self._error_handler: Callable[[Event, Exception], None] | None = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds since the experiment epoch)."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for diagnostics and tests)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule {label!r} with negative delay {delay}"
            )
        return self._queue.push(
            self.clock.now + delay, callback, priority=priority, label=label
        )

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute sim-time ``time``."""
        if time < self.clock.now:
            raise SchedulingError(
                f"cannot schedule {label!r} in the past: {time} < {self.clock.now}"
            )
        return self._queue.push(time, callback, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (idempotent)."""
        self._queue.cancel(event)

    def set_error_handler(
        self, handler: Callable[[Event, Exception], None] | None
    ) -> None:
        """Install a handler for callback exceptions (``None`` re-raises)."""
        self._error_handler = handler

    @property
    def error_handler(self) -> Callable[[Event, Exception], None] | None:
        """The installed callback-exception handler (``None`` re-raises).

        Exposed so compound events — a :class:`~repro.sim.process.
        PeriodicBatch` tick running many member callbacks — can apply
        the same per-callback isolation the engine applies per event.
        """
        return self._error_handler

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Event:
        """Execute the next event and return it.

        Raises:
            SchedulingError: when the queue is empty.
        """
        event = self._queue.pop()
        self.clock.advance_to(event.time)
        self._events_fired += 1
        try:
            event.callback()
        except Exception as exc:  # noqa: BLE001 - routed to handler
            if self._error_handler is None:
                raise
            self._error_handler(event, exc)
        return event

    def run_until(self, end_time: float, *, max_events: int | None = None) -> int:
        """Run events until ``end_time`` (inclusive) and advance the clock there.

        This is the simulation's innermost loop, dispatching straight off
        the queue's ``(time, priority, sequence, event)`` heap tuples:
        no ``step()`` call, no ``peek_time`` round trip, no clock
        monotonicity re-check per event (heap pop order is nondecreasing
        and scheduling already rejects past times).  Firing order is
        bit-identical to popping events one at a time.

        Args:
            end_time: absolute sim-time to run to.
            max_events: optional safety cap on executed events.

        Returns:
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        clock = self.clock
        if end_time < clock._now:
            raise SimulationError(
                f"end_time {end_time} is before current time {clock.now}"
            )
        self._running = True
        executed = 0
        queue = self._queue
        heap = queue._heap
        try:
            while heap:
                entry = heap[0]
                event_time = entry[0]
                if event_time > end_time:
                    break
                heappop(heap)
                event = entry[3]
                if event.cancelled:
                    continue
                queue._live -= 1
                # Mark fired (mirrors EventQueue.pop): the event left the
                # queue, so a cancel() from inside its own callback — a
                # periodic process stopping itself mid-tick — is a no-op
                # instead of double-decrementing the live count.
                event.cancelled = True
                clock._now = event_time
                self._events_fired += 1
                executed += 1
                try:
                    event.callback()
                except Exception as exc:  # noqa: BLE001 - routed to handler
                    if self._error_handler is None:
                        raise
                    self._error_handler(event, exc)
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"run_until exceeded max_events={max_events}"
                    )
            clock.advance_to(end_time)
        finally:
            self._running = False
        return executed

    def run_all(self, *, max_events: int = 10_000_000) -> int:
        """Run until the queue empties; returns the number of events fired."""
        executed = 0
        while self._queue:
            self.step()
            executed += 1
            if executed >= max_events:
                raise SimulationError(f"run_all exceeded max_events={max_events}")
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self.clock.now}, pending={len(self._queue)}, "
            f"fired={self._events_fired})"
        )


def run_simulation(sim: Simulator, end_time: float) -> dict[str, Any]:
    """Run ``sim`` to ``end_time`` and return a small execution summary."""
    executed = sim.run_until(end_time)
    return {
        "end_time": sim.now,
        "events_executed": executed,
        "events_pending": sim.pending_events,
    }
