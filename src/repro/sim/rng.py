"""Deterministic hierarchical random-number streams.

Every stochastic component receives its own ``random.Random`` stream derived
from a master seed plus a stable name path, e.g.::

    rng = derive_rng(master_seed, "attackers", "paste", "arrival")

Derivation hashes the path with BLAKE2b, so adding a new component never
perturbs the streams of existing ones — runs stay reproducible as the
library grows.  ``random.Random`` (Mersenne Twister) is used instead of
numpy generators in behavioural code because its sequence is stable across
numpy versions; numpy arrays are produced only inside the analysis layer.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable

_DIGEST_BYTES = 8


def derive_seed(master_seed: int, *path: str | int) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a name path.

    The mapping is stable across Python versions (no builtin ``hash``) and
    collision-resistant enough for simulation purposes.
    """
    hasher = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    hasher.update(str(int(master_seed)).encode("utf-8"))
    for part in path:
        hasher.update(b"\x1f")
        hasher.update(str(part).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "big")


def derive_rng(master_seed: int, *path: str | int) -> random.Random:
    """Return a ``random.Random`` seeded from the derived child seed."""
    return random.Random(derive_seed(master_seed, *path))


class SeedSequence:
    """Convenience wrapper binding a master seed to a base path.

    Example:
        >>> seq = SeedSequence(42, "attackers")
        >>> rng = seq.rng("paste", "arrival")
        >>> child = seq.child("paste")
        >>> child.rng("arrival").random() == rng.random()
        True
    """

    __slots__ = ("_master", "_path")

    def __init__(self, master_seed: int, *path: str | int) -> None:
        self._master = int(master_seed)
        self._path: tuple[str | int, ...] = tuple(path)

    @property
    def master_seed(self) -> int:
        return self._master

    @property
    def path(self) -> tuple[str | int, ...]:
        return self._path

    def seed(self, *extra: str | int) -> int:
        """Derive the integer seed for ``extra`` appended to the base path."""
        return derive_seed(self._master, *self._path, *extra)

    def rng(self, *extra: str | int) -> random.Random:
        """Derive a ``random.Random`` for ``extra`` under the base path."""
        return derive_rng(self._master, *self._path, *extra)

    def child(self, *extra: str | int) -> "SeedSequence":
        """Return a new sequence rooted deeper in the path hierarchy."""
        return SeedSequence(self._master, *self._path, *extra)

    @staticmethod
    def spawn_many(base: "SeedSequence", names: Iterable[str | int]) -> dict:
        """Spawn one child per name; handy for per-account streams."""
        return {name: base.child(name) for name in names}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequence(master={self._master}, path={self._path!r})"
