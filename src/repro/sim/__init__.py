"""Discrete-event simulation substrate.

The whole reproduction runs on a single deterministic timeline managed by
:class:`~repro.sim.engine.Simulator`.  Components schedule callbacks on the
shared event queue, read the clock through :class:`~repro.sim.clock.SimClock`
and draw randomness from RNG streams derived with
:func:`~repro.sim.rng.derive_rng`, which keeps every subsystem independent
and reproducible.
"""

from repro.sim.clock import (
    EXPERIMENT_EPOCH,
    SimClock,
    days,
    from_datetime,
    hours,
    minutes,
    to_datetime,
)
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.process import PeriodicProcess
from repro.sim.rng import SeedSequence, derive_rng, derive_seed

__all__ = [
    "EXPERIMENT_EPOCH",
    "Event",
    "EventQueue",
    "PeriodicProcess",
    "SeedSequence",
    "SimClock",
    "Simulator",
    "days",
    "derive_rng",
    "derive_seed",
    "from_datetime",
    "hours",
    "minutes",
    "to_datetime",
]
