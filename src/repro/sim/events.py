"""Event queue for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same
instant with the same priority fire in scheduling order, which is essential
for reproducible runs.

The queue is the innermost ring of the simulation hot path, so its layout
is chosen for the interpreter, not for elegance: the binary heap holds
``(time, priority, sequence, event)`` tuples, which heapq compares at C
speed without ever calling back into Python (sequence numbers are unique,
so the comparison never reaches the event object), and :class:`Event` is a
plain ``__slots__`` class — no dataclass dispatch, no per-event ``__dict__``,
no generated ``__lt__``.  A full ``scaled(200)`` run used to spend ~25% of
its loop time in the dataclass-generated ``Event.__lt__``; the tuple keys
remove that entirely.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator

from repro.errors import SchedulingError

#: Callbacks receive no arguments; closures capture whatever context they need.
EventCallback = Callable[[], Any]


class Event:
    """A scheduled callback.

    Attributes:
        time: absolute sim-time at which the event fires.
        priority: tie-breaker; lower fires first at equal times.
        sequence: insertion counter providing total, deterministic order.
        callback: zero-argument callable executed by the engine.
        label: human-readable tag used in traces and error messages.
        cancelled: true once the event is no longer pending — either
            :meth:`cancel` was called or the engine already fired it
            (the queue marks popped events so a late ``cancel`` cannot
            corrupt its live count).
    """

    __slots__ = ("time", "priority", "sequence", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: EventCallback,
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def sort_key(self) -> tuple[float, int, int]:
        """The total order the queue fires events in."""
        return (self.time, self.priority, self.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"sequence={self.sequence!r}, label={self.label!r}, "
            f"cancelled={self.cancelled!r})"
        )


class EventQueue:
    """Deterministic binary-heap event queue.

    The heap (``_heap``) stores ``(time, priority, sequence, event)``
    tuples; :meth:`repro.sim.engine.Simulator.run_until` reads it directly
    for its inlined dispatch loop.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``time`` and return the event."""
        if not callable(callback):
            raise SchedulingError(f"callback for {label!r} is not callable")
        time = float(time)
        sequence = next(self._counter)
        event = Event(time, priority, sequence, callback, label)
        heapq.heappush(self._heap, (time, priority, sequence, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        The returned event is marked ``cancelled``: it has left the
        queue, so a later :meth:`cancel` (e.g. a periodic process
        stopping itself from inside its own tick) must be a no-op
        rather than corrupting the live-event count.

        Raises:
            SchedulingError: if the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            event.cancelled = True
            return event
        raise SchedulingError("pop from an empty event queue")

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def peek_time(self) -> float | None:
        """Return the fire time of the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def drain(self) -> Iterator[Event]:
        """Yield and remove all live events in firing order (for inspection)."""
        while self:
            yield self.pop()
