"""Event queue for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same
instant with the same priority fire in scheduling order, which is essential
for reproducible runs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import SchedulingError

#: Callbacks receive no arguments; closures capture whatever context they need.
EventCallback = Callable[[], Any]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute sim-time at which the event fires.
        priority: tie-breaker; lower fires first at equal times.
        sequence: insertion counter providing total, deterministic order.
        callback: zero-argument callable executed by the engine.
        label: human-readable tag used in traces and error messages.
    """

    time: float
    priority: int
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic binary-heap event queue."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``time`` and return the event."""
        if not callable(callback):
            raise SchedulingError(f"callback for {label!r} is not callable")
        event = Event(
            time=float(time),
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SchedulingError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SchedulingError("pop from an empty event queue")

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> float | None:
        """Return the fire time of the next live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def drain(self) -> Iterator[Event]:
        """Yield and remove all live events in firing order (for inspection)."""
        while self:
            yield self.pop()
