"""Simulation time.

Simulation time is a float number of **seconds** since the experiment epoch,
2015-06-25T00:00:00 UTC — the day the paper started leaking credentials.
Helpers convert between sim-seconds and :class:`datetime.datetime`, and the
:func:`minutes` / :func:`hours` / :func:`days` helpers keep schedule code
readable.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

#: The instant at which the measurement in the paper begins (t = 0.0).
EXPERIMENT_EPOCH = datetime(2015, 6, 25, 0, 0, 0, tzinfo=timezone.utc)

_SECONDS_PER_MINUTE = 60.0
_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 86400.0


def minutes(value: float) -> float:
    """Return ``value`` minutes expressed in sim-seconds."""
    return value * _SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Return ``value`` hours expressed in sim-seconds."""
    return value * _SECONDS_PER_HOUR


def days(value: float) -> float:
    """Return ``value`` days expressed in sim-seconds."""
    return value * _SECONDS_PER_DAY


def to_datetime(sim_time: float) -> datetime:
    """Convert sim-seconds to an aware UTC :class:`datetime`."""
    return EXPERIMENT_EPOCH + timedelta(seconds=sim_time)


def from_datetime(moment: datetime) -> float:
    """Convert an aware :class:`datetime` to sim-seconds.

    Naive datetimes are assumed to be UTC, matching how the paper reports
    wall-clock dates.
    """
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=timezone.utc)
    return (moment - EXPERIMENT_EPOCH).total_seconds()


class SimClock:
    """Monotonic simulation clock owned by the engine.

    The clock only moves forward, driven by the event loop; components hold
    a reference to it and read :attr:`now` when stamping records.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds since the epoch."""
        return self._now

    @property
    def now_datetime(self) -> datetime:
        """Current simulation time as an aware UTC datetime."""
        return to_datetime(self._now)

    def advance_to(self, new_time: float) -> None:
        """Move the clock forward to ``new_time``.

        Raises:
            ValueError: if ``new_time`` is earlier than the current time.
        """
        if new_time < self._now:
            raise ValueError(
                f"clock cannot move backwards: {new_time} < {self._now}"
            )
        self._now = float(new_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now!r}, utc={self.now_datetime.isoformat()})"
