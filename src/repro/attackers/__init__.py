"""Attacker behaviour models.

Real attacker traffic is the one ingredient of the paper that cannot be
obtained offline, so this package substitutes a calibrated agent
population: every leak event attracts visitors whose sophistication,
origin choice, anonymisation, device, timing and taxonomy behaviour are
conditioned on the outlet, matching the aggregate statistics the paper
reports.  The analysis pipeline never sees these agents — only the
observable traces they leave on the webmail service.
"""

from repro.attackers.actions import SENSITIVE_SEARCH_TERMS
from repro.attackers.agent import AttackerAgent
from repro.attackers.arrival import sample_arrival_delay
from repro.attackers.casestudies import (
    BlackmailCampaign,
    CardingForumRegistration,
)
from repro.attackers.population import AttackerPopulation, PopulationConfig
from repro.attackers.sophistication import (
    AttackerProfile,
    SophisticationLevel,
    TaxonomyClass,
)

__all__ = [
    "AttackerAgent",
    "AttackerPopulation",
    "AttackerProfile",
    "BlackmailCampaign",
    "CardingForumRegistration",
    "PopulationConfig",
    "SENSITIVE_SEARCH_TERMS",
    "SophisticationLevel",
    "TaxonomyClass",
    "sample_arrival_delay",
]
