"""Attacker behaviour models.

Real attacker traffic is the one ingredient of the paper that cannot be
obtained offline, so this package substitutes a calibrated agent
population: every leak event attracts visitors whose sophistication,
origin choice, anonymisation, device, timing and taxonomy behaviour are
conditioned on the outlet, matching the aggregate statistics the paper
reports.  The analysis pipeline never sees these agents — only the
observable traces they leave on the webmail service.
"""

from repro.attackers.actions import SENSITIVE_SEARCH_TERMS
from repro.attackers.agent import AttackerAgent
from repro.attackers.arrival import sample_arrival_delay
from repro.attackers.casestudies import (
    BlackmailCampaign,
    CardingForumRegistration,
)
from repro.attackers.personas import (
    BehaviorPolicy,
    MixEntry,
    Persona,
    PersonaMix,
    PersonaRegistry,
    ProfileOverrides,
    VisitContext,
    personas,
    register_persona,
)
from repro.attackers.population import AttackerPopulation, PopulationConfig
from repro.attackers.sophistication import (
    AttackerProfile,
    SophisticationLevel,
    TaxonomyClass,
)

__all__ = [
    "AttackerAgent",
    "AttackerPopulation",
    "AttackerProfile",
    "BehaviorPolicy",
    "BlackmailCampaign",
    "CardingForumRegistration",
    "MixEntry",
    "Persona",
    "PersonaMix",
    "PersonaRegistry",
    "PopulationConfig",
    "ProfileOverrides",
    "SENSITIVE_SEARCH_TERMS",
    "SophisticationLevel",
    "TaxonomyClass",
    "VisitContext",
    "personas",
    "register_persona",
    "sample_arrival_delay",
]
