"""Scripted case studies from Section 4.7 of the paper.

Three incidents the paper documents are reproduced as deterministic
scripted agents, because they materially shape the measured results:

* the **Ashley Madison blackmailer** used three honey accounts to send
  bitcoin-ransom blackmail and abandoned many drafts; later visitors read
  those drafts, which is how the bitcoin vocabulary entered the read-set
  and hence Table 2;
* the **quota notifications** ("using too much computer time") that two
  accounts received from the provider and that an attacker later read;
* the **carding-forum registration** that used a honey address as the
  registration email, delivering a confirmation message into the inbox.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import partial

from repro.errors import WebmailError
from repro.netsim.cities import cities_in_region
from repro.netsim.geo import GeoDatabase
from repro.sim.clock import days, minutes
from repro.sim.engine import Simulator
from repro.webmail.message import EmailMessage
from repro.webmail.service import LoginContext, WebmailService

#: The blackmail note. Deliberately rich in the vocabulary Table 2
#: surfaces: bitcoin/bitcoins/localbitcoins, payment, account, seller,
#: results, listed, below, family.
BLACKMAIL_BODY = (
    "We found your profile in the Ashley Madison results. Your name and "
    "details are listed below, together with proof from the leaked "
    "database results.\n"
    "Unless you complete a payment of 2 bitcoin to the bitcoin wallet "
    "listed below, everything will be shared with your family and your "
    "employer. Think what the bitcoin payment costs against what your "
    "family would suffer.\n"
    "How to pay with bitcoin: open an account on localbitcoins, search "
    "the localbitcoins seller results, pick a trusted seller, buy "
    "bitcoins, and transfer the bitcoins to the wallet address below. "
    "Payment instructions and the bitcoin wallet are listed below.\n"
    "wallet: 1FakeWa11etAddre55ForSimulation\n"
    "You have three days. Think about your family before you ignore "
    "this message."
)

BLACKMAIL_TUTORIAL_DRAFT = (
    "draft - bitcoin payment tutorial for the family letters\n"
    "Step 1: register an account on localbitcoins and verify it.\n"
    "Step 2: search the localbitcoins seller results and pick a seller "
    "with good feedback listed below the search results.\n"
    "Step 3: buy bitcoins from the seller with cash deposit or bank "
    "payment; localbitcoins holds the bitcoins in escrow.\n"
    "Step 4: send the bitcoins to the bitcoin wallet listed in the "
    "message below.\n"
    "Keep this bitcoin tutorial for the next batch of family letters."
)

QUOTA_NOTICE_SUBJECT = "Notice: Apps Script using too much computer time"
QUOTA_NOTICE_BODY = (
    "A script attached to this account has been using too much computer "
    "time and exceeded its daily quota. Review your attached scripts and "
    "triggers to restore normal operation."
)


@dataclass
class BlackmailCampaign:
    """The Ashley Madison blackmailer, replayed on three honey accounts.

    Args:
        sim: simulation engine.
        service: the webmail provider.
        geo: used to allocate the blackmailer's source IP.
        rng: dedicated randomness stream.
        start_day: day (after epoch) the campaign begins.
    """

    sim: Simulator
    service: WebmailService
    geo: GeoDatabase
    rng: random.Random
    start_day: float = 20.0
    victims_per_account: int = 18
    drafts_per_account: int = 4
    accounts_wanted: int = 3
    follow_up_readers: int = 2
    sent_messages: int = 0
    drafts_created: int = 0
    follow_up_reads: int = 0
    accounts_used: list[str] = field(default_factory=list)
    _targets: list[tuple[str, str]] = field(default_factory=list)

    def target(self, account_address: str, password: str) -> None:
        """Add a candidate account (the blackmailer tries them in order
        until three work — the paper observed three accounts used)."""
        self._targets.append((account_address, password))

    def schedule(self) -> None:
        """Schedule the campaign visits."""
        for index, (address, password) in enumerate(self._targets):
            at_time = days(self.start_day + index * 1.5)
            # partials, not closures: the event queue must pickle for
            # simulation checkpointing (repro.service.checkpoint).
            self.sim.schedule_at(
                at_time,
                partial(self._run_on_account, address, password),
                label=f"blackmail:{address}",
            )

    def _run_on_account(self, address: str, password: str) -> None:
        if len(self.accounts_used) >= self.accounts_wanted:
            return
        now = self.sim.now
        city = self.rng.choice(list(cities_in_region("europe")))
        context = LoginContext(
            device_id="blackmailer-rig",
            ip_address=self.geo.allocate_in_city(city),
            user_agent=(
                "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 "
                "(KHTML, like Gecko) Chrome/44.0.2403 Safari/537.36"
            ),
        )
        try:
            session = self.service.login(address, password, context, now)
        except WebmailError:
            return
        self.accounts_used.append(address)
        try:
            for i in range(self.drafts_per_account):
                body = (
                    BLACKMAIL_TUTORIAL_DRAFT
                    if i == 0
                    else BLACKMAIL_BODY
                )
                self.service.create_draft(
                    session,
                    subject=f"payment required {i + 1}",
                    body=body,
                    recipients=(f"victim{i}@am-victims.example",),
                    now=now + minutes(2 + i),
                )
                self.drafts_created += 1
            for i in range(self.victims_per_account):
                self.service.send_email(
                    session,
                    subject="we know about your account",
                    body=BLACKMAIL_BODY,
                    recipients=(
                        f"victim{self.rng.randrange(10_000)}@am-victims.example",
                    ),
                    now=now + minutes(10) + i * 30.0,
                )
                self.sent_messages += 1
        except WebmailError:
            return  # account suspended mid-campaign
        # "Other cybercriminals read them during later accesses": the same
        # paste leads more visitors to the account; some of them find and
        # read the abandoned drafts.
        for reader_index in range(self.follow_up_readers):
            delay = days(self.rng.uniform(8.0, 30.0))
            self.sim.schedule_at(
                now + delay,
                partial(self._follow_up_read, address, password, reader_index),
                label=f"blackmail-reader:{address}",
            )

    def _follow_up_read(
        self, address: str, password: str, reader_index: int
    ) -> None:
        """A later criminal reads the abandoned drafts."""
        now = self.sim.now
        city = self.rng.choice(list(cities_in_region("europe")))
        context = LoginContext(
            device_id=f"draft-reader-{reader_index}-{address}",
            ip_address=self.geo.allocate_in_city(city),
            user_agent=(
                "Mozilla/5.0 (Windows NT 6.3; WOW64) AppleWebKit/537.36 "
                "(KHTML, like Gecko) Chrome/45.0.2454 Safari/537.36"
            ),
        )
        try:
            session = self.service.login(address, password, context, now)
        except WebmailError:
            return
        try:
            from repro.webmail.mailbox import Folder

            account = self.service.account(address)
            for draft in account.mailbox.messages(Folder.DRAFTS):
                self.service.read_message(session, draft.message_id, now)
                self.follow_up_reads += 1
        except WebmailError:
            return


@dataclass
class CardingForumRegistration:
    """An attacker registers on a carding forum with a honey address.

    The registration confirmation is inbound mail *to* the honey account,
    showing the account used as a stepping stone for further crime.
    """

    sim: Simulator
    service: WebmailService
    forum_name: str = "verified-carder.example"
    registration_done: bool = False

    def schedule(self, account_address: str, at_day: float = 70.0) -> None:
        self.sim.schedule_at(
            days(at_day),
            partial(self._deliver_confirmation, account_address),
            label=f"carding-reg:{account_address}",
        )

    def _deliver_confirmation(self, account_address: str) -> None:
        now = self.sim.now
        message = EmailMessage(
            sender_name=f"{self.forum_name} staff",
            sender_address=f"no-reply@{self.forum_name}",
            recipient_addresses=(account_address,),
            subject=f"Welcome to {self.forum_name} - confirm registration",
            body=(
                "Your registration is nearly complete. Confirm your "
                "account using the token listed below to access the "
                "market boards.\n"
                "token: 9f2c-sim-token\n"
            ),
            received_at=now,
        )
        self.registration_done = self.service.deliver_inbound(
            account_address, message
        )


def deliver_quota_notice(
    service: WebmailService, account_address: str, now: float
) -> bool:
    """Deliver the provider's quota-warning email into a honey inbox."""
    message = EmailMessage(
        sender_name="Apps Script notifications",
        sender_address="apps-script-noreply@provider.example",
        recipient_addresses=(account_address,),
        subject=QUOTA_NOTICE_SUBJECT,
        body=QUOTA_NOTICE_BODY,
        received_at=now,
    )
    return service.deliver_inbound(account_address, message)
