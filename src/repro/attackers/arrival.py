"""Arrival processes: when attackers first try leaked credentials.

Figure 3 of the paper gives the shape: within 25 days of the leak, ~80%
of paste-site accesses, ~60% of forum accesses and ~40% of malware-outlet
accesses have occurred; Russian paste sites stay silent for over two
months; malware-outlet accesses show bursts ~30 and ~100 days after the
leak (aggregation/resale).  Delays are sampled from per-venue lognormals
plus outlet-specific structure.
"""

from __future__ import annotations

import math
import random

from repro.errors import ConfigurationError
from repro.sim.clock import days


def lognormal_from_median(
    rng: random.Random, median_days: float, sigma: float
) -> float:
    """A lognormal delay (days) with the given median and log-space sigma."""
    if median_days <= 0:
        raise ConfigurationError("median_days must be positive")
    mu = math.log(median_days)
    return rng.lognormvariate(mu, sigma)


def sample_arrival_delay(
    rng: random.Random,
    *,
    median_days: float,
    sigma: float = 1.25,
    dormancy_days: float = 0.0,
    horizon_days: float = 236.0,
) -> float:
    """Sample a leak-to-first-visit delay in sim-seconds.

    ``dormancy_days`` shifts the entire distribution right (the Russian
    paste-site effect).  Values beyond the measurement horizon are
    resampled once, then clamped, so every generated visitor lands inside
    the experiment window (visitors beyond it would simply be unobserved).
    """
    delay_days = dormancy_days + lognormal_from_median(rng, median_days, sigma)
    if delay_days > horizon_days:
        delay_days = dormancy_days + lognormal_from_median(
            rng, median_days, sigma
        )
    delay_days = min(delay_days, horizon_days - 0.25)
    return days(delay_days)


def sample_burst_arrival(
    rng: random.Random,
    *,
    burst_center_days: float,
    spread_days: float = 4.0,
    horizon_days: float = 236.0,
) -> float:
    """An arrival clustered around a burst moment (malware resale events).

    The burst centre is where Figure 3's malware CDF shows its sharp
    inflection points (~30 and ~100 days after the leak).
    """
    if burst_center_days <= 0 or spread_days <= 0:
        raise ConfigurationError("burst parameters must be positive")
    delay_days = rng.gauss(burst_center_days, spread_days)
    delay_days = max(1.0, min(delay_days, horizon_days - 0.25))
    return days(delay_days)


def sample_return_gaps(
    rng: random.Random, visits: int, span_days: float
) -> list[float]:
    """Gaps (sim-seconds) between consecutive visits of a returning actor.

    The first visit is at the arrival time; ``visits - 1`` return gaps are
    spread over roughly ``span_days`` with exponential spacing, giving the
    multi-day tails Figure 1 shows for hijacker/gold-digger accesses.
    """
    if visits <= 1:
        return []
    mean_gap = max(span_days / (visits - 1), 0.05)
    return [
        days(max(rng.expovariate(1.0 / mean_gap), 0.02))
        for _ in range(visits - 1)
    ]
