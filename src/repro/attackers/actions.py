"""Concrete attacker actions executed against the webmail service.

Each function performs one taxonomy behaviour through the public service
API, leaving exactly the traces the monitoring infrastructure can observe:
reads, stars, drafts, sends, searches and password changes.
"""

from __future__ import annotations

import random

from repro.errors import WebmailError
from repro.webmail.mailbox import Folder
from repro.webmail.service import WebmailService
from repro.webmail.sessions import Session

#: Terms gold-diggers search for (financial and personal value signals).
#: "transfer" is deliberately present although it is corpus-common: in
#: Table 2 it tops tfidf_A while its tfidf difference stays ~0, showing
#: the difference metric isolates *rare* searched terms.
SENSITIVE_SEARCH_TERMS: tuple[str, ...] = (
    "payment", "account", "banking", "statement", "invoice",
    "password", "family", "balance", "routing", "transfer",
)

#: Addresses spam is blasted to (all sinkholed by the honey config).
_SPAM_RECIPIENT_DOMAINS = (
    "victim-mail.example", "corp-mail.example", "freemail.example",
)


def act_check_inbox(
    service: WebmailService, session: Session, now: float
) -> None:
    """The curious baseline: look at the inbox, touch nothing."""
    service.touch(session, now)


def act_gold_dig(
    service: WebmailService,
    session: Session,
    rng: random.Random,
    now: float,
    *,
    max_searches: int = 2,
    max_reads_per_search: int = 1,
) -> tuple[list[str], int]:
    """Search for sensitive terms and read the hits.

    Returns (queries issued, messages read).  Also reads recent drafts
    and recent unread inbox mail with some probability — this is how the
    blackmailer's abandoned bitcoin drafts and the provider's quota
    notifications entered the read-set in the paper.
    """
    account = service.account(session.account_address)
    queries: list[str] = []
    read_count = 0
    n_searches = rng.randint(1, max_searches)
    terms = rng.sample(
        SENSITIVE_SEARCH_TERMS, k=min(n_searches, len(SENSITIVE_SEARCH_TERMS))
    )
    for term in terms:
        queries.append(term)
        results = service.search(session, term, now)
        for message in results[: rng.randint(1, max_reads_per_search)]:
            if not message.flags.read:
                service.read_message(session, message.message_id, now)
                read_count += 1
    # Peek at drafts: abandoned drafts are visible and interesting —
    # this is how the blackmailer's bitcoin tutorials entered the
    # read-set in the paper.
    drafts = account.mailbox.messages(Folder.DRAFTS)
    for draft in drafts:
        if rng.random() < 0.7 and not draft.flags.read:
            service.read_message(session, draft.message_id, now)
            read_count += 1
    # Peek at the newest unread inbox mail (provider notifications land
    # here).
    inbox = account.mailbox.messages(Folder.INBOX)
    unread = [m for m in inbox if not m.flags.read]
    if unread and rng.random() < 0.35:
        service.read_message(session, unread[-1].message_id, now)
        read_count += 1
    # Occasionally star something valuable-looking.
    if queries and rng.random() < 0.15:
        results = service.search(session, queries[0], now)
        if results:
            service.star_message(session, results[0].message_id, now)
    service.abuse.observe_search_burst(account, now)
    return queries, read_count


def act_send_spam(
    service: WebmailService,
    session: Session,
    rng: random.Random,
    now: float,
    *,
    email_count: int,
    burst_seconds: float,
) -> int:
    """Blast a spam run; returns emails actually accepted before any block.

    Sends are spread across the burst window; anti-abuse may suspend the
    account mid-burst, at which point remaining sends fail.
    """
    subjects = (
        "amazing offer inside", "your parcel is waiting",
        "limited invitation", "confirm your bonus today",
    )
    sent = 0
    for i in range(email_count):
        at_time = now + burst_seconds * (i / max(email_count, 1))
        recipient = (
            f"user{rng.randrange(1, 10_000_000)}@"
            f"{rng.choice(_SPAM_RECIPIENT_DOMAINS)}"
        )
        try:
            service.send_email(
                session,
                rng.choice(subjects),
                "Click the link for your reward. Unsubscribe anytime.",
                (recipient,),
                at_time,
            )
        except WebmailError:
            break
        sent += 1
    return sent


def act_hijack(
    service: WebmailService,
    session: Session,
    rng: random.Random,
    now: float,
) -> str:
    """Change the account password, locking out the owner (and scraper)."""
    new_password = "hx" + "".join(
        rng.choice("abcdefghijkmnpqrstuvwxyz0123456789") for _ in range(10)
    )
    service.change_password(session, new_password, now)
    return new_password


def act_read_recent(
    service: WebmailService,
    session: Session,
    rng: random.Random,
    now: float,
    *,
    max_reads: int = 2,
) -> int:
    """Read a couple of recent inbox messages (light snooping)."""
    account = service.account(session.account_address)
    inbox = account.mailbox.messages(Folder.INBOX)
    read_count = 0
    for message in inbox[-rng.randint(1, max_reads):]:
        if not message.flags.read:
            service.read_message(session, message.message_id, now)
            read_count += 1
    return read_count
