"""Pluggable attacker personas: behaviour + arrival + origin profiles.

The paper's Section 4.2/4.8 taxonomy (curious, gold diggers, spammers,
hijackers) describes what criminals *did* in one 2016 deployment; the
design space of workloads is far wider — Email Babel varies account
language and observes different criminal engagement, and MIGP motivates
modelling credential-stuffing-style automated probes.  This module makes
the attacker layer open-ended:

* :class:`Persona` — one named attacker archetype bundling a behaviour
  policy (what the attacker does once logged in), optional arrival
  hooks (when it shows up), and optional profile overrides (how it
  connects).  Subclass it and decorate with :func:`register_persona` to
  add a new workload without touching any core module.
* :class:`BehaviorPolicy` — the per-visit step API
  :class:`~repro.attackers.agent.AttackerAgent` drives; the agent no
  longer dispatches on :class:`~repro.attackers.sophistication.
  TaxonomyClass`.
* :class:`PersonaMix` — a JSON-serialisable, per-outlet weighted table
  of persona combinations; :class:`repro.api.Scenario` carries one and
  the population builder draws from it.
* ``personas`` — the process-wide :class:`PersonaRegistry`, pre-loaded
  with the paper's four classes plus new archetypes (``stuffing_bot``,
  ``lurker``, ``data_exfiltrator``, ``locale_sensitive``).

The four paper personas reproduce the seed's behaviour bit-for-bit:
their hooks consume the population RNG stream in exactly the order the
hard-coded dispatch did, which the ``paper_default`` golden tests pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from repro.attackers import actions
from repro.attackers.arrival import lognormal_from_median, sample_burst_arrival
from repro.attackers.sophistication import SophisticationLevel, TaxonomyClass
from repro.core.groups import LocationHint, OutletKind
from repro.errors import ConfigurationError
from repro.netsim.anonymity import OriginKind
from repro.sim.clock import minutes

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.attackers.agent import AttackerAgent
    from repro.attackers.population import PopulationConfig
    from repro.leaks.outlet import LeakEvent
    from repro.webmail.service import WebmailService
    from repro.webmail.sessions import Session


# ----------------------------------------------------------------------
# the per-visit step API
# ----------------------------------------------------------------------
@dataclass(slots=True)
class VisitContext:
    """Everything one policy step sees during one agent visit.

    Agents reuse one context across visits (mutating ``session`` /
    ``now`` / ``is_first``), so policies must read it during
    :meth:`BehaviorPolicy.on_visit` and not retain it between visits.
    """

    agent: "AttackerAgent"
    service: "WebmailService"
    session: "Session"
    rng: random.Random
    now: float
    is_first: bool

    @property
    def outcome(self):
        """The agent's ground-truth outcome trace."""
        return self.agent.outcome


class BehaviorPolicy:
    """One persona's in-account behaviour, stepped once per visit.

    Policies are built per agent (they may carry per-agent state) and
    run in combo order inside one shared ``try``: a mid-visit
    :class:`~repro.errors.WebmailError` (account suspension) aborts the
    remaining steps of that visit, exactly like the seed's dispatch.
    """

    #: Automated clients do not linger in the mailbox: when *every*
    #: policy on an agent is machine-paced, the agent skips the
    #: end-of-visit re-authentication that makes human visit durations
    #: observable on the activity page (one login, zero duration).
    machine_paced: bool = False

    def on_visit(self, ctx: VisitContext) -> None:
        raise NotImplementedError


class CuriousPolicy(BehaviorPolicy):
    """Look at the inbox, touch nothing (§4.2 'curious')."""

    def on_visit(self, ctx: VisitContext) -> None:
        actions.act_check_inbox(ctx.service, ctx.session, ctx.now)


class GoldDiggerPolicy(BehaviorPolicy):
    """Search for value signals and read the hits, every visit."""

    def on_visit(self, ctx: VisitContext) -> None:
        queries, reads = actions.act_gold_dig(
            ctx.service, ctx.session, ctx.rng, ctx.now
        )
        ctx.outcome.searches.extend(queries)
        ctx.outcome.emails_read += reads


class HijackerPolicy(BehaviorPolicy):
    """Assess, then change the password on the first visit."""

    def on_visit(self, ctx: VisitContext) -> None:
        if not ctx.is_first:
            return
        if ctx.rng.random() < 0.5:
            ctx.outcome.emails_read += actions.act_read_recent(
                ctx.service, ctx.session, ctx.rng, ctx.now
            )
        new_password = actions.act_hijack(
            ctx.service, ctx.session, ctx.rng, ctx.now
        )
        # The hijacker knows the new password; later visits work.
        ctx.agent.adopt_password(new_password)
        ctx.outcome.hijacked = True
        ctx.outcome.new_password = new_password


class SpammerPolicy(BehaviorPolicy):
    """Blast one spam burst on the first visit."""

    def on_visit(self, ctx: VisitContext) -> None:
        if not ctx.is_first:
            return
        # Bursts stay under the provider's per-hour threshold most of
        # the time; greedier runs risk mid-burst suspension.
        count = ctx.rng.randint(60, 110)
        burst = minutes(ctx.rng.uniform(120, 240))
        ctx.outcome.emails_sent += actions.act_send_spam(
            ctx.service,
            ctx.session,
            ctx.rng,
            ctx.now,
            email_count=count,
            burst_seconds=burst,
        )


class LoginOnlyPolicy(BehaviorPolicy):
    """Validate the credential and leave (credential-stuffing probe)."""

    machine_paced = True

    def on_visit(self, ctx: VisitContext) -> None:
        # The login itself is the observable event; automated validators
        # do not render the mailbox.
        ctx.service.logout(ctx.session)


class LurkerPolicy(BehaviorPolicy):
    """Low-and-slow: skim at most one recent message per visit."""

    read_probability: float = 0.6

    def on_visit(self, ctx: VisitContext) -> None:
        if ctx.rng.random() < self.read_probability:
            ctx.outcome.emails_read += actions.act_read_recent(
                ctx.service, ctx.session, ctx.rng, ctx.now, max_reads=1
            )


#: Where bulk exfiltration jobs forward their loot (sinkholed like all
#: outbound honey traffic).
EXFIL_DROP_ADDRESS = "dropbox@exfil-collect.example"


class DataExfiltratorPolicy(BehaviorPolicy):
    """Bulk search-and-forward: harvest on the first visit, then sweep."""

    def on_visit(self, ctx: VisitContext) -> None:
        if not ctx.is_first:
            ctx.outcome.emails_read += actions.act_read_recent(
                ctx.service, ctx.session, ctx.rng, ctx.now
            )
            return
        queries, reads = actions.act_gold_dig(
            ctx.service,
            ctx.session,
            ctx.rng,
            ctx.now,
            max_searches=4,
            max_reads_per_search=3,
        )
        ctx.outcome.searches.extend(queries)
        ctx.outcome.emails_read += reads
        for index in range(ctx.rng.randint(2, 4)):
            subject = f"fwd: {queries[index % len(queries)]} findings"
            ctx.service.send_email(
                ctx.session,
                subject,
                "archive attached - full mailbox extract batch "
                f"{index + 1}",
                (EXFIL_DROP_ADDRESS,),
                ctx.now + index * 45.0,
            )
            ctx.outcome.emails_sent += 1


class LocaleSensitivePolicy(BehaviorPolicy):
    """Email-Babel-style: engage only when the content language fits."""

    def __init__(self, engaged: bool) -> None:
        self.engaged = engaged

    def on_visit(self, ctx: VisitContext) -> None:
        if not self.engaged:
            actions.act_check_inbox(ctx.service, ctx.session, ctx.now)
            return
        queries, reads = actions.act_gold_dig(
            ctx.service, ctx.session, ctx.rng, ctx.now, max_searches=1
        )
        ctx.outcome.searches.extend(queries)
        ctx.outcome.emails_read += reads


# ----------------------------------------------------------------------
# persona protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProfileOverrides:
    """A persona's fixed connection profile, replacing the outlet draw.

    When a persona returns one of these from :meth:`Persona.
    profile_overrides`, the population builder skips the default
    malleability/anonymisation/device sampling entirely and uses these
    values.  A ``DIRECT`` origin with ``origin_city=None`` still samples
    a city from the outlet's background mix.
    """

    origin: OriginKind = OriginKind.DIRECT
    origin_city: str | None = None
    level: SophisticationLevel | None = None
    hide_user_agent: bool = False
    location_malleable: bool = False
    android_device: bool = False
    infected_host: bool = False


class Persona:
    """One named attacker archetype.

    Subclass and override what differs from the defaults; every hook
    has a no-op default, so the minimal persona is a name, a taxonomy
    equivalence and :meth:`build_policy`.  The four paper personas must
    consume the population RNG exactly as the seed's hard-coded tables
    did, so their hooks draw nothing (except the hijacker's extra
    arrival delay, which the seed also drew).

    Attributes:
        name: registry key; also the ground-truth label telemetry
            records per access.
        summary: one line for ``repro personas``.
        taxonomy: observable-equivalent taxonomy classes.  Drives the
            default visit-count draw, profile validation, and the
            analysis layer's expectations.
        expected_labels: the :class:`~repro.analysis.taxonomy.
            TaxonomyLabel` *values* the paper's classifier should emit
            for this persona — the analysis signature table scores the
            classifier's precision/recall against these.
    """

    name: str = ""
    summary: str = ""
    taxonomy: frozenset[TaxonomyClass] = frozenset({TaxonomyClass.CURIOUS})
    expected_labels: frozenset[str] = frozenset({"curious"})

    def build_policy(
        self,
        rng: random.Random,
        *,
        event: "LeakEvent",
        config: "PopulationConfig",
    ) -> BehaviorPolicy:
        """A fresh policy for one agent (may draw per-agent traits)."""
        raise NotImplementedError

    def sample_arrival(
        self,
        rng: random.Random,
        *,
        event: "LeakEvent",
        config: "PopulationConfig",
    ) -> float | None:
        """Leak-to-first-visit delay in sim-seconds, or ``None`` for the
        outlet's default arrival process."""
        return None

    def extra_arrival_delay(
        self, rng: random.Random, config: "PopulationConfig"
    ) -> float:
        """Extra days added to the sampled arrival (0 = no draw)."""
        return 0.0

    def visit_plan(
        self,
        rng: random.Random,
        *,
        outlet: OutletKind,
        config: "PopulationConfig",
    ) -> tuple[int, float] | None:
        """(visits, span_days), or ``None`` for the outlet default."""
        return None

    def profile_overrides(
        self,
        rng: random.Random,
        *,
        outlet: OutletKind,
        config: "PopulationConfig",
    ) -> ProfileOverrides | None:
        """Fixed connection profile, or ``None`` for the outlet draw."""
        return None

    def describe(self) -> str:
        classes = ",".join(sorted(c.value for c in self.taxonomy))
        labels = ",".join(sorted(self.expected_labels))
        return (
            f"{self.name}: {self.summary or '(no summary)'}\n"
            f"  taxonomy={classes} expected_labels={labels}"
        )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class PersonaRegistry:
    """Name -> :class:`Persona` mapping with introspection helpers."""

    def __init__(self) -> None:
        self._entries: dict[str, Persona] = {}

    def register(self, persona: Persona, *, replace: bool = False) -> None:
        if not persona.name:
            raise ConfigurationError("persona needs a non-empty name")
        if persona.name in self._entries and not replace:
            raise ConfigurationError(
                f"persona {persona.name!r} is already registered"
            )
        self._entries[persona.name] = persona

    def get(self, name: str) -> Persona:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names())
            raise ConfigurationError(
                f"unknown persona {name!r}; known personas: {known}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def signature_table(self) -> dict[str, frozenset[str]]:
        """persona name -> expected classifier labels (string values)."""
        return {
            name: frozenset(entry.expected_labels)
            for name, entry in self._entries.items()
        }

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[Persona]:
        for name in self.names():
            yield self._entries[name]

    def __len__(self) -> int:
        return len(self._entries)

    def __reduce__(self):
        # The process-wide registry pickles by reference, never by
        # value: serializing its entries would drag every registered
        # factory into the payload (including ones defined in modules
        # the unpickling process cannot import, e.g. ad-hoc personas a
        # test registered), and a receiving process wants *its*
        # registry anyway.  Custom registries still pickle by value.
        if self is personas:
            return (_process_registry, ())
        return (PersonaRegistry, (), self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def _process_registry() -> "PersonaRegistry":
    return personas


#: The process-wide registry every entry point consults.
personas = PersonaRegistry()


def register_persona(
    cls: type | None = None,
    *,
    registry: PersonaRegistry | None = None,
    replace: bool = False,
) -> Callable[[type], type] | type:
    """Class decorator: instantiate a :class:`Persona` subclass and
    register it under its ``name``.

    Usage::

        @register_persona
        class Ransomware(Persona):
            name = "ransomware"
            ...

    Registration mutates the process-global registry: worker processes
    only see runtime-registered personas when they inherit the parent's
    memory (``fork``, the Linux default) or import the registering
    module themselves.  Under the ``spawn`` start method, register
    personas in a module the workers import, or run
    :class:`~repro.api.BatchRunner` with ``jobs=1``.
    """

    def decorate(klass: type) -> type:
        target = personas if registry is None else registry
        target.register(klass(), replace=replace)
        return klass

    if cls is not None:
        return decorate(cls)
    return decorate


# ----------------------------------------------------------------------
# the paper's four classes as personas (bit-for-bit equivalents)
# ----------------------------------------------------------------------
@register_persona
class CuriousPersona(Persona):
    name = "curious"
    summary = "logs in, looks at the inbox, touches nothing (§4.2)"
    taxonomy = frozenset({TaxonomyClass.CURIOUS})
    expected_labels = frozenset({"curious"})

    def build_policy(self, rng, *, event, config) -> BehaviorPolicy:
        return CuriousPolicy()


@register_persona
class GoldDiggerPersona(Persona):
    name = "gold_digger"
    summary = "searches for financial value signals and reads hits (§4.2)"
    taxonomy = frozenset({TaxonomyClass.GOLD_DIGGER})
    expected_labels = frozenset({"gold_digger"})

    def build_policy(self, rng, *, event, config) -> BehaviorPolicy:
        return GoldDiggerPolicy()


@register_persona
class SpammerPersona(Persona):
    name = "spammer"
    summary = "blasts one spam burst through the account (§4.2)"
    taxonomy = frozenset({TaxonomyClass.SPAMMER})
    expected_labels = frozenset({"spammer"})

    def build_policy(self, rng, *, event, config) -> BehaviorPolicy:
        return SpammerPolicy()


@register_persona
class HijackerPersona(Persona):
    name = "hijacker"
    summary = "changes the password, locking out the owner (§4.2)"
    taxonomy = frozenset({TaxonomyClass.HIJACKER})
    expected_labels = frozenset({"hijacker"})

    def build_policy(self, rng, *, event, config) -> BehaviorPolicy:
        return HijackerPolicy()

    def extra_arrival_delay(self, rng, config) -> float:
        # Hijackers assess before locking owners out, so their arrivals
        # lag the curious crowd (same draw the seed made).
        return lognormal_from_median(
            rng, config.hijacker_extra_delay_median_days, 1.0
        )


# ----------------------------------------------------------------------
# new archetypes beyond the paper
# ----------------------------------------------------------------------
@register_persona
class StuffingBotPersona(Persona):
    name = "stuffing_bot"
    summary = (
        "credential-stuffing bot: one burst login-only validation probe "
        "shortly after the leak (MIGP-style automated access)"
    )
    taxonomy = frozenset({TaxonomyClass.CURIOUS})
    expected_labels = frozenset({"curious"})

    def build_policy(self, rng, *, event, config) -> BehaviorPolicy:
        return LoginOnlyPolicy()

    def sample_arrival(self, rng, *, event, config) -> float:
        # Stuffing waves hit leak dumps almost immediately and tightly
        # clustered, unlike the human lognormal tail.
        return sample_burst_arrival(
            rng,
            burst_center_days=2.0,
            spread_days=1.0,
            horizon_days=config.horizon_days,
        )

    def visit_plan(self, rng, *, outlet, config) -> tuple[int, float]:
        return 1, 0.0

    def profile_overrides(self, rng, *, outlet, config) -> ProfileOverrides:
        # Datacenter proxies, headless clients with no user agent.
        return ProfileOverrides(
            origin=OriginKind.PROXY,
            hide_user_agent=True,
            level=SophisticationLevel.HIGH,
        )


@register_persona
class LurkerPersona(Persona):
    name = "lurker"
    summary = (
        "long-lived low-and-slow reader: many short visits over months, "
        "at most one message skimmed per visit"
    )
    taxonomy = frozenset({TaxonomyClass.GOLD_DIGGER})
    expected_labels = frozenset({"gold_digger"})

    def build_policy(self, rng, *, event, config) -> BehaviorPolicy:
        return LurkerPolicy()

    def visit_plan(self, rng, *, outlet, config) -> tuple[int, float]:
        visits = rng.randint(6, 12)
        span = rng.uniform(40.0, min(120.0, config.horizon_days))
        return visits, span


@register_persona
class DataExfiltratorPersona(Persona):
    name = "data_exfiltrator"
    summary = (
        "bulk search-and-forward: harvests the mailbox and forwards the "
        "loot to a drop address over Tor"
    )
    taxonomy = frozenset(
        {TaxonomyClass.GOLD_DIGGER, TaxonomyClass.SPAMMER}
    )
    expected_labels = frozenset({"gold_digger", "spammer"})

    def build_policy(self, rng, *, event, config) -> BehaviorPolicy:
        return DataExfiltratorPolicy()

    def visit_plan(self, rng, *, outlet, config) -> tuple[int, float]:
        return rng.randint(2, 3), rng.uniform(1.0, 5.0)

    def profile_overrides(self, rng, *, outlet, config) -> ProfileOverrides:
        return ProfileOverrides(
            origin=OriginKind.TOR, level=SophisticationLevel.HIGH
        )


@register_persona
class LocaleSensitivePersona(Persona):
    name = "locale_sensitive"
    summary = (
        "Email-Babel-style language gating: engages with accounts whose "
        "advertised owner matches the attacker's locale, skims the rest"
    )
    taxonomy = frozenset({TaxonomyClass.GOLD_DIGGER})
    expected_labels = frozenset({"gold_digger"})

    #: Engagement probabilities by whether the leak advertises an
    #: anglophone owner (our decoy corpora are English): Email Babel
    #: observed markedly lower criminal activity on language-mismatched
    #: accounts.
    match_engage_prob: float = 0.85
    mismatch_engage_prob: float = 0.25

    def build_policy(self, rng, *, event, config) -> BehaviorPolicy:
        hint = event.content.location_hint
        engage_prob = (
            self.match_engage_prob
            if hint is not LocationHint.NONE
            else self.mismatch_engage_prob
        )
        return LocaleSensitivePolicy(engaged=rng.random() < engage_prob)


# ----------------------------------------------------------------------
# persona mixes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MixEntry:
    """One weighted persona combination inside an outlet's mix.

    ``personas`` is a tuple of registry names executed in order per
    visit (the paper's non-exclusive class overlaps, e.g.
    ``("gold_digger", "hijacker")``).
    """

    personas: tuple[str, ...]
    weight: float

    def __post_init__(self) -> None:
        if not self.personas:
            raise ConfigurationError("mix entry needs at least one persona")
        if not all(isinstance(name, str) and name for name in self.personas):
            raise ConfigurationError(
                f"bad persona names in mix entry: {self.personas!r}"
            )
        if not self.weight > 0.0:
            raise ConfigurationError(
                f"mix entry weight must be positive, got {self.weight!r}"
            )

    @property
    def label(self) -> str:
        return "+".join(self.personas)


#: Tolerance for per-outlet weight sums (weights are probabilities).
_WEIGHT_SUM_TOLERANCE = 1e-6


@dataclass(frozen=True)
class PersonaMix:
    """Per-outlet weighted persona-combination tables.

    Immutable, hashable-free value object that serializes losslessly;
    :meth:`draw` consumes exactly one uniform draw per multi-entry
    outlet (and none for single-entry outlets), which is what keeps the
    paper mix bit-for-bit equivalent to the seed's hard-coded tables.
    """

    outlets: tuple[tuple[str, tuple[MixEntry, ...]], ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for outlet_value, entries in self.outlets:
            if outlet_value in seen:
                raise ConfigurationError(
                    f"duplicate outlet {outlet_value!r} in persona mix"
                )
            seen.add(outlet_value)
            try:
                OutletKind(outlet_value)
            except ValueError:
                known = ", ".join(kind.value for kind in OutletKind)
                raise ConfigurationError(
                    f"unknown outlet {outlet_value!r} in persona mix; "
                    f"known outlets: {known}"
                ) from None
            if not entries:
                raise ConfigurationError(
                    f"persona mix for outlet {outlet_value!r} is empty"
                )
            total = sum(entry.weight for entry in entries)
            if abs(total - 1.0) > _WEIGHT_SUM_TOLERANCE:
                raise ConfigurationError(
                    f"persona mix weights for outlet {outlet_value!r} "
                    f"sum to {total:g}, expected 1"
                )
        # Canonical outlet order (OutletKind declaration order) so two
        # mixes with the same content compare equal regardless of how
        # their tables were keyed (JSON round trips sort object keys).
        order = {kind.value: index for index, kind in enumerate(OutletKind)}
        object.__setattr__(
            self,
            "outlets",
            tuple(sorted(self.outlets, key=lambda kv: order[kv[0]])),
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls,
        table: Mapping[
            OutletKind | str,
            Sequence[tuple[Sequence[str] | str, float]],
        ],
    ) -> "PersonaMix":
        """Build from ``{outlet: [(personas, weight), ...]}``.

        Persona combos may be a single name or a sequence of names.
        """
        outlets = []
        for outlet, rows in table.items():
            value = outlet.value if isinstance(outlet, OutletKind) else outlet
            entries = []
            for combo, weight in rows:
                if isinstance(combo, str):
                    combo = (combo,)
                entries.append(MixEntry(tuple(combo), float(weight)))
            outlets.append((value, tuple(entries)))
        return cls(outlets=tuple(outlets))

    @classmethod
    def paper(cls) -> "PersonaMix":
        """The seed's calibrated Figure 2 / Section 4.2 mix tables.

        Entry order matters: the cumulative draw walks it, so the order
        here reproduces the seed's ``_CLASS_MIX`` draws exactly.
        """
        return cls.from_table(
            {
                OutletKind.PASTE: (
                    (("curious",), 0.690),
                    (("gold_digger",), 0.150),
                    (("hijacker",), 0.070),
                    (("gold_digger", "hijacker"), 0.040),
                    (("hijacker", "spammer"), 0.025),
                    (("gold_digger", "spammer"), 0.025),
                ),
                OutletKind.FORUM: (
                    (("curious",), 0.640),
                    (("gold_digger",), 0.260),
                    (("gold_digger", "hijacker"), 0.040),
                    (("hijacker",), 0.050),
                    (("hijacker", "spammer"), 0.010),
                ),
                OutletKind.MALWARE: (
                    (("curious",), 1.0),
                ),
            }
        )

    @classmethod
    def single(
        cls,
        name: str,
        outlets: Sequence[OutletKind | str] = (
            OutletKind.PASTE,
            OutletKind.FORUM,
            OutletKind.MALWARE,
        ),
    ) -> "PersonaMix":
        """Every visitor on every listed outlet is ``name``."""
        return cls.from_table(
            {outlet: ((name, 1.0),) for outlet in outlets}
        )

    def with_outlet(
        self,
        outlet: OutletKind | str,
        rows: Sequence[tuple[Sequence[str] | str, float]],
    ) -> "PersonaMix":
        """A copy with one outlet's table replaced (or added)."""
        value = outlet.value if isinstance(outlet, OutletKind) else outlet
        replacement = PersonaMix.from_table({value: rows})
        new_entries = replacement.entries_for(value)
        outlets = tuple(
            (existing, new_entries if existing == value else entries)
            for existing, entries in self.outlets
        )
        if value not in dict(self.outlets):
            outlets += ((value, new_entries),)
        return PersonaMix(outlets=outlets)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def outlet_values(self) -> tuple[str, ...]:
        return tuple(value for value, _ in self.outlets)

    def entries_for(self, outlet: OutletKind | str) -> tuple[MixEntry, ...]:
        value = outlet.value if isinstance(outlet, OutletKind) else outlet
        for outlet_value, entries in self.outlets:
            if outlet_value == value:
                return entries
        return ()

    def persona_names(self) -> set[str]:
        """Every persona name referenced anywhere in the mix."""
        return {
            name
            for _, entries in self.outlets
            for entry in entries
            for name in entry.personas
        }

    def validate(
        self, registry: PersonaRegistry | None = None
    ) -> "PersonaMix":
        """Resolve every persona name; raises
        :class:`~repro.errors.ConfigurationError` (listing the known
        names) on the first unknown one.  Returns ``self`` for
        chaining."""
        reg = registry if registry is not None else personas
        for name in sorted(self.persona_names()):
            reg.get(name)
        return self

    def draw(
        self, outlet: OutletKind | str, rng: random.Random
    ) -> tuple[str, ...]:
        """Draw one persona combination for a visitor on ``outlet``.

        Single-entry outlets short-circuit without touching the RNG;
        multi-entry outlets consume exactly one uniform draw (the
        seed's cumulative-scan semantics).
        """
        entries = self.entries_for(outlet)
        if not entries:
            value = outlet.value if isinstance(outlet, OutletKind) else outlet
            raise ConfigurationError(
                f"persona mix has no entries for outlet {value!r} "
                f"(outlets: {', '.join(self.outlet_values()) or 'none'})"
            )
        if len(entries) == 1:
            return entries[0].personas
        roll = rng.random()
        cumulative = 0.0
        for entry in entries:
            cumulative += entry.weight
            if roll < cumulative:
                return entry.personas
        return entries[-1].personas

    def summary(self) -> str:
        """Compact one-line rendering for ``describe()`` output."""
        parts = []
        for outlet_value, entries in self.outlets:
            rendered = ",".join(
                f"{entry.label}:{entry.weight:g}" for entry in entries
            )
            parts.append(f"{outlet_value}[{rendered}]")
        return " ".join(parts)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "outlets": {
                outlet_value: [
                    {
                        "personas": list(entry.personas),
                        "weight": entry.weight,
                    }
                    for entry in entries
                ]
                for outlet_value, entries in self.outlets
            }
        }

    @classmethod
    def from_dict(
        cls, data: dict, *, registry: PersonaRegistry | None = None
    ) -> "PersonaMix":
        """Rebuild a mix, validating persona names against ``registry``
        (the global one by default)."""
        try:
            outlet_table = data["outlets"]
            table = {
                outlet_value: [
                    (tuple(row["personas"]), float(row["weight"]))
                    for row in rows
                ]
                for outlet_value, rows in outlet_table.items()
            }
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"bad persona mix payload: {exc!r}"
            ) from exc
        try:
            mix = cls.from_table(table)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad persona mix payload: {exc}"
            ) from exc
        return mix.validate(registry)


# ----------------------------------------------------------------------
# TaxonomyClass migration shim
# ----------------------------------------------------------------------
#: Canonical policy order of the paper's dispatch: gold-digging runs
#: every visit, hijack and spam trigger on the first one.
_CLASS_POLICY_ORDER = (
    (TaxonomyClass.GOLD_DIGGER, GoldDiggerPolicy),
    (TaxonomyClass.HIJACKER, HijackerPolicy),
    (TaxonomyClass.SPAMMER, SpammerPolicy),
)


def default_policies_for(profile) -> list[BehaviorPolicy]:
    """Paper-equivalent policies for a profile built without personas.

    This is the migration shim for code that still constructs
    :class:`~repro.attackers.agent.AttackerAgent` directly from
    :class:`~repro.attackers.sophistication.TaxonomyClass` sets: the
    derived policy list reproduces the seed's ``_act`` dispatch order
    exactly.
    """
    if profile.is_curious_only:
        return [CuriousPolicy()]
    policies: list[BehaviorPolicy] = [
        factory()
        for taxonomy_class, factory in _CLASS_POLICY_ORDER
        if profile.has(taxonomy_class)
    ]
    if not policies:
        policies.append(CuriousPolicy())
    return policies


def policies_for_personas(
    names: Sequence[str],
    rng: random.Random,
    *,
    event: "LeakEvent",
    config: "PopulationConfig",
    registry: PersonaRegistry | None = None,
) -> list[BehaviorPolicy]:
    """Build the policy chain for a persona combination."""
    reg = registry if registry is not None else personas
    return [
        reg.get(name).build_policy(rng, event=event, config=config)
        for name in names
    ]
