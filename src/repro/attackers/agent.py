"""The attacker agent: schedules visits and steps behaviour policies.

One :class:`AttackerAgent` owns one :class:`AttackerProfile`, one target
account and one chain of :class:`~repro.attackers.personas.
BehaviorPolicy` objects.  It schedules its visits on the simulator; each
visit logs in through the public service API (leaving an activity-page
row), steps every policy in order, and — for visits longer than a few
minutes — re-authenticates near the end, which is what makes access
durations observable on the activity page, as cookies are observed at
each login.

The agent knows nothing about taxonomy classes any more: what happens
inside the account is entirely the policies' business.  Callers that
still construct agents from bare :class:`~repro.attackers.
sophistication.TaxonomyClass` profiles get the paper-equivalent chain
via :func:`~repro.attackers.personas.default_policies_for`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

from repro.attackers.personas import (
    BehaviorPolicy,
    VisitContext,
    default_policies_for,
)
from repro.attackers.sophistication import AttackerProfile
from repro.errors import ConfigurationError, WebmailError
from repro.netsim.anonymity import AnonymityNetwork, OriginKind
from repro.netsim.cities import city_by_name
from repro.netsim.geo import GeoDatabase
from repro.netsim.ipaddr import IPAddress
from repro.netsim.useragents import UserAgentFactory
from repro.sim.clock import minutes
from repro.sim.engine import Simulator
from repro.webmail.service import LoginContext, WebmailService
from repro.webmail.sessions import Session


@dataclass
class AgentOutcome:
    """Ground-truth trace of what this agent actually did (tests only)."""

    logins_attempted: int = 0
    logins_succeeded: int = 0
    emails_read: int = 0
    emails_sent: int = 0
    drafts_created: int = 0
    searches: list[str] = field(default_factory=list)
    hijacked: bool = False
    new_password: str | None = None


class AttackerAgent:
    """Executes one profile's visits against one honey account."""

    def __init__(
        self,
        profile: AttackerProfile,
        account_address: str,
        leaked_password: str,
        *,
        sim: Simulator,
        service: WebmailService,
        geo: GeoDatabase,
        anonymity: AnonymityNetwork,
        ua_factory: UserAgentFactory,
        rng: random.Random,
        blacklist_registrar=None,
        advertised_midpoint: tuple[float, float] | None = None,
        policies: Sequence[BehaviorPolicy] | None = None,
    ) -> None:
        self.profile = profile
        self.account_address = account_address
        self._password = leaked_password
        self._sim = sim
        self._service = service
        self._geo = geo
        self._anonymity = anonymity
        self._rng = rng
        self._blacklist_registrar = blacklist_registrar
        self._advertised_midpoint = advertised_midpoint
        self.outcome = AgentOutcome()
        self._device_id = f"dev-{profile.attacker_id}"
        self._user_agent = self._pick_user_agent(ua_factory)
        self._source_ip: IPAddress | None = None
        if policies is None:
            policies = default_policies_for(profile)
        self._policies: list[BehaviorPolicy] = list(policies)
        # Per-session constants, computed once: the connection identity
        # never changes between visits, and neither does the policy
        # chain, so the login context and the machine-paced flag are
        # visit-loop invariants.
        self._login_context: LoginContext | None = None
        self._visit_context: VisitContext | None = None
        self._machine_paced = all(p.machine_paced for p in self._policies)
        # Resolve the connection identity eagerly, at construction.
        # Construction order is fixed by the leak ledger (the population
        # spawns every agent in the same order in every process), so the
        # shared geo/anonymity streams are consumed identically whether
        # or not this particular agent is later scheduled — lazy
        # first-visit resolution would instead consume them in visit
        # order, which differs between a shard and the serial run.
        self._resolve_source_ip()

    @property
    def device_id(self) -> str:
        """The stable device identity cookies are minted against."""
        return self._device_id

    @property
    def policies(self) -> tuple[BehaviorPolicy, ...]:
        return tuple(self._policies)

    def adopt_password(self, new_password: str) -> None:
        """Switch the credential used for later visits (hijack move)."""
        self._password = new_password

    # ------------------------------------------------------------------
    # connection identity
    # ------------------------------------------------------------------
    def _pick_user_agent(self, factory: UserAgentFactory) -> str:
        if self.profile.hide_user_agent:
            return factory.empty()
        if self.profile.android_device:
            return factory.android()
        return factory.desktop()

    def _resolve_source_ip(self) -> IPAddress:
        """The agent's stable source address (per-device, reused)."""
        if self._source_ip is not None:
            return self._source_ip
        if self.profile.origin is not OriginKind.DIRECT:
            node = self._anonymity.pick(self.profile.origin)
            self._source_ip = node.address
            return self._source_ip
        if self.profile.origin_city is None:
            raise ConfigurationError(
                "direct connections need an origin city"
            )
        city = city_by_name(self.profile.origin_city)
        self._source_ip = self._geo.allocate_in_city(city)
        if self.profile.infected_host and self._blacklist_registrar:
            self._blacklist_registrar(self._source_ip)
        return self._source_ip

    def _login(self, now: float) -> Session | None:
        self.outcome.logins_attempted += 1
        context = self._login_context
        if context is None:
            context = self._login_context = LoginContext(
                device_id=self._device_id,
                ip_address=self._resolve_source_ip(),
                user_agent=self._user_agent,
            )
        try:
            session = self._service.login(
                self.account_address, self._password, context, now
            )
        except WebmailError:
            return None  # hijacked by someone else, or suspended
        self.outcome.logins_succeeded += 1
        account = self._service.account(self.account_address)
        self._service.abuse.observe_login_signal(
            account,
            blacklisted_ip=self.profile.infected_host,
            anonymised=self.profile.anonymised,
            now=now,
        )
        return session

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, first_visit_time: float, gaps: list[float]) -> None:
        """Schedule all visits on the simulator."""
        visit_time = first_visit_time
        self._schedule_visit(visit_time, is_first=True)
        for gap in gaps:
            visit_time += gap
            self._schedule_visit(visit_time, is_first=False)

    def _schedule_visit(self, at_time: float, *, is_first: bool) -> None:
        if at_time <= self._sim.now:
            at_time = self._sim.now + 1.0
        # partial, not a closure: scheduled callbacks must pickle for
        # simulation checkpointing (repro.service.checkpoint).
        self._sim.schedule_at(
            at_time,
            partial(self._visit, is_first=is_first),
            label=f"visit:{self.profile.attacker_id}",
        )

    # ------------------------------------------------------------------
    # one visit
    # ------------------------------------------------------------------
    def _visit(self, *, is_first: bool) -> None:
        now = self._sim.now
        session = self._login(now)
        if session is None:
            return
        profile = self.profile
        visit_length = minutes(self._rng.uniform(1.0, 35.0))
        context = self._visit_context
        if context is None:
            context = self._visit_context = VisitContext(
                agent=self,
                service=self._service,
                session=session,
                rng=self._rng,
                now=now,
                is_first=is_first,
            )
        else:
            context.session = session
            context.now = now
            context.is_first = is_first
        try:
            for policy in self._policies:
                policy.on_visit(context)
        except WebmailError:
            # The account was suspended mid-visit; the session died.
            # Skip the remaining policy steps but keep the re-login
            # schedule: the visit still happened.
            pass
        # Long visits re-authenticate near the end; the activity page then
        # shows the same cookie again, making the duration measurable.
        # Fully machine-paced agents (credential-stuffing probes) leave
        # after one login and never produce an observable duration.
        if self._machine_paced:
            return
        if visit_length > minutes(5):
            end_time = now + visit_length
            self._sim.schedule_at(
                end_time,
                partial(self._relogin, end_time),
                label=f"relogin:{profile.attacker_id}",
            )

    def _relogin(self, at_time: float) -> None:
        self._login(at_time)
