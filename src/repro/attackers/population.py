"""Attacker population generation: one agent per interested visitor.

Consumes the leak ledger and produces :class:`AttackerAgent` schedules.
All calibration constants live in :class:`PopulationConfig`; *who* shows
up is governed by a :class:`~repro.attackers.personas.PersonaMix` drawn
against the persona registry, so new workloads plug in without editing
this module.  The default mix (:meth:`PersonaMix.paper`) reproduces the
paper's aggregate statistics (327 unique accesses, taxonomy split,
outlet timing, anonymisation shares, Figure 5 medians) bit-for-bit.
Every draw comes from a derived RNG stream, so populations are fully
reproducible.

Origin mixes are expressed as weighted entries of either a single hub
city (``"city:Name"``) or a uniform draw over a region bucket
(``"region:name"``).  Hub concentration keeps the number of distinct
source countries near the 29 the paper observed while pinning the
distance medians of Figure 5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.attackers.agent import AttackerAgent
from repro.attackers.arrival import (
    lognormal_from_median,
    sample_arrival_delay,
    sample_burst_arrival,
    sample_return_gaps,
)
from repro.attackers.personas import (
    Persona,
    PersonaMix,
    PersonaRegistry,
    personas as default_persona_registry,
)
from repro.attackers.sophistication import (
    AttackerProfile,
    SophisticationLevel,
    TaxonomyClass,
)
from repro.core.groups import LocationHint, OutletKind
from repro.errors import ConfigurationError
from repro.leaks.forums import FORUM_PROFILES, _poisson
from repro.leaks.outlet import LeakEvent
from repro.leaks.pastesites import SITE_PROFILES
from repro.netsim.anonymity import AnonymityNetwork, OriginKind
from repro.netsim.cities import cities_in_region
from repro.netsim.geo import GeoDatabase
from repro.netsim.useragents import UserAgentFactory
from repro.sim.clock import days
from repro.sim.engine import Simulator
from repro.webmail.service import WebmailService

#: Mix entries: ("city:<Name>", weight) draws that hub city;
#: ("region:<bucket>", weight) draws uniformly inside the bucket.
OriginMix = tuple[tuple[str, float], ...]

#: Background population of paste-site scrapers: Europe/CIS-heavy with a
#: global tail.  UK-map median lands near the paper's 1784 km no-location
#: radius; US-map median near 7900 km.
_PASTE_BACKGROUND: OriginMix = (
    ("region:uk", 0.08),
    ("city:Paris", 0.06), ("city:Amsterdam", 0.06), ("city:Berlin", 0.06),
    ("city:Warsaw", 0.06), ("city:Madrid", 0.05), ("city:Bucharest", 0.06),
    ("city:Sofia", 0.04), ("city:Moscow", 0.06), ("city:Kyiv", 0.05),
    ("city:Minsk", 0.03), ("city:New York", 0.05),
    ("city:Los Angeles", 0.03), ("city:Toronto", 0.03),
    ("city:Sao Paulo", 0.04), ("city:Lagos", 0.04), ("city:Cairo", 0.04),
    ("city:Istanbul", 0.04), ("city:Hanoi", 0.03), ("city:Jakarta", 0.03),
    ("city:Johannesburg", 0.02), ("city:Stockholm", 0.02),
    ("city:Buenos Aires", 0.02),
)

#: Background population of forum browsers: globally spread (the largest
#: circles of Figure 5).
_FORUM_BACKGROUND: OriginMix = (
    ("region:uk", 0.03), ("city:Paris", 0.04), ("city:Bucharest", 0.06),
    ("city:Moscow", 0.08), ("city:Kyiv", 0.06), ("city:Hanoi", 0.07),
    ("city:Jakarta", 0.07), ("city:Manila", 0.05), ("city:Karachi", 0.05),
    ("city:Mumbai", 0.06), ("city:Lagos", 0.08), ("city:Abuja", 0.04),
    ("city:Cairo", 0.05), ("city:Casablanca", 0.04),
    ("city:Sao Paulo", 0.06), ("city:Bogota", 0.04),
    ("city:Mexico City", 0.04), ("city:New York", 0.04),
    ("city:Berlin", 0.04),
)

#: Location-malleable attackers told the owner lives near London: connect
#: from the UK or nearby Europe, never farther — a tight distribution
#: whose shape differs sharply from the diffuse background (that contrast
#: is what makes the paste-site Cramér-von Mises test significant).
#: Median ~1400 km.
_MALLEABLE_UK: OriginMix = (
    ("region:uk", 0.20),
    ("city:Madrid", 0.20), ("city:Rome", 0.30), ("city:Warsaw", 0.30),
)

#: Location-malleable attackers told the owner lives in the US Midwest:
#: connect from inside the US/Canada.  Median ~940 km from Pontiac, IL.
_MALLEABLE_US: OriginMix = (
    ("region:us_midwest", 0.45),
    ("city:Toronto", 0.07), ("city:Washington", 0.07),
    ("city:New York", 0.14), ("city:Dallas", 0.08), ("city:Boston", 0.07),
    ("city:Denver", 0.06), ("city:Miami", 0.06),
)

#: Malware resale/aggregation bursts are value-assessment events: the
#: burst visitor is always the gold-digger persona, regardless of the
#: malware check mix (Figure 3's ~30/~100-day inflection points).
_MALWARE_BURST_COMBO: tuple[str, ...] = ("gold_digger",)


@dataclass(frozen=True)
class PopulationConfig:
    """Calibration constants for the attacker population.

    Rates live in the venue profiles (:mod:`repro.leaks`); this object
    holds the behavioural probabilities.  See DESIGN.md section 5 for the
    calibration targets.
    """

    horizon_days: float = 236.0
    # anonymisation probabilities for non-malleable visitors
    paste_anonymise_prob: float = 0.38
    forum_anonymise_prob: float = 0.32
    proxy_share_of_anonymised: float = 0.35
    # location malleability (connect near the advertised decoy location)
    paste_malleable_prob: float = 0.60
    forum_malleable_prob: float = 0.15
    # device mix
    android_prob: float = 0.15
    # infected-host share of direct connections (Spamhaus hits)
    infected_host_prob: float = 0.12
    # return-visit behaviour
    paste_return_prob: float = 0.20
    malware_return_prob: float = 0.80
    max_return_visits: int = 5
    # arrival shape
    paste_sigma: float = 1.50
    forum_sigma: float = 1.50
    forum_median_days: float = 30.0
    # hijackers assess before locking owners out, so their arrivals lag
    # the curious crowd (median extra days)
    hijacker_extra_delay_median_days: float = 12.0
    # malware structure: a fast-validation component plus a slow tail,
    # with aggregation/resale gold-digger bursts
    malware_fast_share: float = 0.45
    malware_fast_median_days: float = 6.0
    malware_slow_median_days: float = 60.0
    malware_checks_extra_mean: float = 1.2
    malware_burst1_day: float = 30.0
    malware_burst1_prob: float = 0.40
    malware_burst2_day: float = 100.0
    malware_burst2_prob: float = 0.55

    def __post_init__(self) -> None:
        for name in (
            "paste_anonymise_prob", "forum_anonymise_prob",
            "proxy_share_of_anonymised", "paste_malleable_prob",
            "forum_malleable_prob", "android_prob", "infected_host_prob",
            "paste_return_prob", "malware_return_prob",
            "malware_fast_share", "malware_burst1_prob",
            "malware_burst2_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be a probability")


@dataclass
class AttackerPopulation:
    """Builds and schedules every attacker agent for a set of leaks.

    ``persona_mix`` decides who visits each outlet; names resolve once
    against ``registry`` (the process-wide persona registry by default),
    so unknown personas fail fast with a
    :class:`~repro.errors.ConfigurationError` listing the known names.
    """

    sim: Simulator
    service: WebmailService
    geo: GeoDatabase
    anonymity: AnonymityNetwork
    rng: random.Random
    config: PopulationConfig = field(default_factory=PopulationConfig)
    persona_mix: PersonaMix | None = None
    registry: PersonaRegistry | None = None
    blacklist_registrar: Callable | None = None
    #: When set, only agents whose target account satisfies the
    #: predicate are scheduled on the simulator (sharded runs pass the
    #: shard-ownership test here).  Every agent is still *built* —
    #: profile draws, persona draws, connection identity — so the
    #: shared RNG streams advance exactly as in an unfiltered run.
    schedule_filter: Callable[[str], bool] | None = None
    agents: list[AttackerAgent] = field(default_factory=list)
    _agent_counter: int = 0

    def __post_init__(self) -> None:
        self._ua_factory = UserAgentFactory(self.rng)
        self._malware_direct_used = False
        if self.registry is None:
            self.registry = default_persona_registry
        if self.persona_mix is None:
            self.persona_mix = PersonaMix.paper()
        # Resolve every persona name once: unknown names fail here with
        # the known-name listing, and draws become one dict lookup.
        self._members_by_combo: dict[tuple[str, ...], tuple[Persona, ...]] = {
            entry.personas: tuple(
                self.registry.get(name) for name in entry.personas
            )
            for outlet_value in self.persona_mix.outlet_values()
            for entry in self.persona_mix.entries_for(outlet_value)
        }
        self._burst_combo = (
            _MALWARE_BURST_COMBO,
            tuple(self.registry.get(n) for n in _MALWARE_BURST_COMBO),
        )

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def spawn_for_leak(
        self, event: LeakEvent, leaked_password: str
    ) -> list[AttackerAgent]:
        """Generate and schedule all visitors drawn by one leak event."""
        if event.outlet is OutletKind.PASTE:
            return self._spawn_paste(event, leaked_password)
        if event.outlet is OutletKind.FORUM:
            return self._spawn_forum(event, leaked_password)
        return self._spawn_malware(event, leaked_password)

    # ------------------------------------------------------------------
    # persona draws
    # ------------------------------------------------------------------
    def _draw_combo(
        self, outlet: OutletKind
    ) -> tuple[tuple[str, ...], tuple[Persona, ...]]:
        """One persona combination for a visitor on ``outlet``.

        Draw semantics live in :meth:`PersonaMix.draw` (single-entry
        outlets touch no RNG, multi-entry outlets consume exactly one
        uniform draw); this just resolves the combo to the personas
        compiled at build time.
        """
        names = self.persona_mix.draw(outlet, self.rng)
        return names, self._members_by_combo[names]

    # ------------------------------------------------------------------
    # origin sampling
    # ------------------------------------------------------------------
    def _sample_origin_city(self, mix: OriginMix) -> str:
        entries = [entry for entry, _ in mix]
        weights = [weight for _, weight in mix]
        chosen = self.rng.choices(entries, weights=weights, k=1)[0]
        kind, _, value = chosen.partition(":")
        if kind == "city":
            return value
        if kind == "region":
            return self.rng.choice(list(cities_in_region(value))).name
        raise ConfigurationError(f"bad origin mix entry {chosen!r}")

    # ------------------------------------------------------------------
    # paste sites
    # ------------------------------------------------------------------
    def _spawn_paste(
        self, event: LeakEvent, password: str
    ) -> list[AttackerAgent]:
        profile = SITE_PROFILES[event.venue]
        count = _poisson(self.rng, profile.audience_rate)
        agents = []
        for _ in range(count):
            arrival = event.leak_time + sample_arrival_delay(
                self.rng,
                median_days=profile.propagation_median_days,
                sigma=self.config.paste_sigma,
                dormancy_days=profile.dormancy_days,
                horizon_days=self.config.horizon_days,
            )
            names, members = self._draw_combo(OutletKind.PASTE)
            agents.append(
                self._build_agent(
                    event,
                    password,
                    outlet=OutletKind.PASTE,
                    names=names,
                    members=members,
                    arrival=arrival,
                    malleable_prob=self.config.paste_malleable_prob,
                    anonymise_prob=self.config.paste_anonymise_prob,
                    background=_PASTE_BACKGROUND,
                    level=SophisticationLevel.MEDIUM,
                )
            )
        return agents

    # ------------------------------------------------------------------
    # forums
    # ------------------------------------------------------------------
    def _spawn_forum(
        self, event: LeakEvent, password: str
    ) -> list[AttackerAgent]:
        base = FORUM_PROFILES[event.venue]
        count = _poisson(self.rng, base.audience_rate)
        agents = []
        for _ in range(count):
            arrival = event.leak_time + sample_arrival_delay(
                self.rng,
                median_days=self.config.forum_median_days,
                sigma=self.config.forum_sigma,
                horizon_days=self.config.horizon_days,
            )
            names, members = self._draw_combo(OutletKind.FORUM)
            agents.append(
                self._build_agent(
                    event,
                    password,
                    outlet=OutletKind.FORUM,
                    names=names,
                    members=members,
                    arrival=arrival,
                    malleable_prob=self.config.forum_malleable_prob,
                    anonymise_prob=self.config.forum_anonymise_prob,
                    background=_FORUM_BACKGROUND,
                    level=SophisticationLevel.LOW,
                )
            )
        return agents

    # ------------------------------------------------------------------
    # malware
    # ------------------------------------------------------------------
    def _sample_malware_check_delay(self) -> float:
        """Botmaster validation delay: fast component plus slow tail."""
        cfg = self.config
        if self.rng.random() < cfg.malware_fast_share:
            delay_days = lognormal_from_median(
                self.rng, cfg.malware_fast_median_days, 0.8
            )
        else:
            delay_days = lognormal_from_median(
                self.rng, cfg.malware_slow_median_days, 0.7
            )
        return days(min(delay_days, cfg.horizon_days - 0.25))

    def _spawn_malware(
        self, event: LeakEvent, password: str
    ) -> list[AttackerAgent]:
        """Botmaster checks plus aggregation/resale gold-digger bursts."""
        cfg = self.config
        agents = []
        checks = 1 + _poisson(self.rng, cfg.malware_checks_extra_mean)
        for _ in range(checks):
            arrival = event.leak_time + self._sample_malware_check_delay()
            names, members = self._draw_combo(OutletKind.MALWARE)
            agents.append(
                self._build_malware_agent(
                    event, password, names, members, arrival
                )
            )
        for burst_day, prob in (
            (cfg.malware_burst1_day, cfg.malware_burst1_prob),
            (cfg.malware_burst2_day, cfg.malware_burst2_prob),
        ):
            if self.rng.random() < prob:
                arrival = event.leak_time + sample_burst_arrival(
                    self.rng,
                    burst_center_days=burst_day,
                    horizon_days=cfg.horizon_days,
                )
                names, members = self._burst_combo
                agents.append(
                    self._build_malware_agent(
                        event, password, names, members, arrival
                    )
                )
        return agents

    def _build_malware_agent(
        self,
        event: LeakEvent,
        password: str,
        names: tuple[str, ...],
        members: tuple[Persona, ...],
        arrival: float,
    ) -> AttackerAgent:
        # All malware-outlet accesses but one arrive via Tor with an empty
        # user agent (Section 4.5: 57 accesses, all Tor except one).
        classes = frozenset().union(*(p.taxonomy for p in members))
        direct = not self._malware_direct_used and self.rng.random() < 0.02
        if direct:
            self._malware_direct_used = True
        origin = OriginKind.DIRECT if direct else OriginKind.TOR
        visits, span = self._persona_visits(
            members, OutletKind.MALWARE, classes
        )
        profile = AttackerProfile(
            attacker_id=self._next_id(),
            outlet=OutletKind.MALWARE,
            classes=classes,
            level=SophisticationLevel.HIGH,
            origin=origin,
            origin_city="Bucharest" if direct else None,
            hide_user_agent=True,
            location_malleable=False,
            android_device=False,
            infected_host=False,
            visits=visits,
            visit_span_days=span,
            personas=names,
        )
        return self._schedule_agent(profile, members, event, password, arrival)

    # ------------------------------------------------------------------
    # shared construction helpers
    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        self._agent_counter += 1
        return f"atk-{self._agent_counter:05d}"

    def _persona_visits(
        self,
        members: tuple[Persona, ...],
        outlet: OutletKind,
        classes: frozenset,
    ) -> tuple[int, float]:
        """The combo's visit plan: first persona override wins, else the
        outlet default draw."""
        for persona in members:
            plan = persona.visit_plan(
                self.rng, outlet=outlet, config=self.config
            )
            if plan is not None:
                return plan
        return self._draw_visits(outlet, classes)

    def _draw_visits(
        self, outlet: OutletKind, classes: frozenset
    ) -> tuple[int, float]:
        """(number of visits, span in days) — drives Figure 1 durations."""
        cfg = self.config
        if outlet is OutletKind.MALWARE:
            if self.rng.random() < cfg.malware_return_prob:
                return self.rng.randint(2, cfg.max_return_visits), (
                    self.rng.uniform(5.0, 50.0)
                )
            return 1, 0.0
        returning = self.rng.random() < cfg.paste_return_prob
        if not returning:
            return 1, 0.0
        # Hijackers and gold diggers exhibit the multi-day tails of Fig. 1.
        if classes & {TaxonomyClass.HIJACKER, TaxonomyClass.GOLD_DIGGER}:
            return self.rng.randint(2, cfg.max_return_visits), (
                self.rng.uniform(2.0, 12.0)
            )
        return self.rng.randint(2, 3), self.rng.uniform(1.0, 8.0)

    def _build_agent(
        self,
        event: LeakEvent,
        password: str,
        *,
        outlet: OutletKind,
        names: tuple[str, ...],
        members: tuple[Persona, ...],
        arrival: float,
        malleable_prob: float,
        anonymise_prob: float,
        background: OriginMix,
        level: SophisticationLevel,
    ) -> AttackerAgent:
        cfg = self.config
        classes = frozenset().union(*(p.taxonomy for p in members))
        hint = event.content.location_hint
        # Persona arrival hooks: a custom process replaces the outlet
        # default entirely; extra delays shift it (the hijacker's
        # assessment lag is one such shift, drawn exactly as the seed
        # drew it).
        for persona in members:
            custom = persona.sample_arrival(
                self.rng, event=event, config=cfg
            )
            if custom is not None:
                arrival = event.leak_time + custom
                break
        for persona in members:
            extra = persona.extra_arrival_delay(self.rng, cfg)
            if extra:
                arrival += days(extra)
        overrides = None
        for persona in members:
            overrides = persona.profile_overrides(
                self.rng, outlet=outlet, config=cfg
            )
            if overrides is not None:
                break
        if overrides is None:
            malleable = (
                hint is not LocationHint.NONE
                and self.rng.random() < malleable_prob
            )
            if malleable:
                origin = OriginKind.DIRECT
                mix = _MALLEABLE_UK if hint is LocationHint.UK else _MALLEABLE_US
            else:
                if self.rng.random() < anonymise_prob:
                    origin = (
                        OriginKind.PROXY
                        if self.rng.random()
                        < cfg.proxy_share_of_anonymised
                        else OriginKind.TOR
                    )
                else:
                    origin = OriginKind.DIRECT
                mix = background
            origin_city = (
                self._sample_origin_city(mix)
                if origin is OriginKind.DIRECT
                else None
            )
            # Draw order matters for seed equivalence: the seed drew
            # visits between the city sample and the device traits.
            visits, span = self._persona_visits(members, outlet, classes)
            hide_user_agent = False
            android_device = (
                origin is OriginKind.DIRECT
                and self.rng.random() < cfg.android_prob
            )
            infected_host = (
                origin is OriginKind.DIRECT
                and self.rng.random() < cfg.infected_host_prob
            )
        else:
            origin = overrides.origin
            malleable = overrides.location_malleable
            origin_city = overrides.origin_city
            if origin is OriginKind.DIRECT and origin_city is None:
                origin_city = self._sample_origin_city(background)
            visits, span = self._persona_visits(members, outlet, classes)
            hide_user_agent = overrides.hide_user_agent
            android_device = overrides.android_device
            infected_host = overrides.infected_host
            if overrides.level is not None:
                level = overrides.level
        profile = AttackerProfile(
            attacker_id=self._next_id(),
            outlet=outlet,
            classes=classes,
            level=level,
            origin=origin,
            origin_city=origin_city,
            hide_user_agent=hide_user_agent,
            location_malleable=malleable,
            android_device=android_device,
            infected_host=infected_host,
            visits=visits,
            visit_span_days=span,
            personas=names,
        )
        return self._schedule_agent(profile, members, event, password, arrival)

    def _schedule_agent(
        self,
        profile: AttackerProfile,
        members: tuple[Persona, ...],
        event: LeakEvent,
        password: str,
        arrival: float,
    ) -> AttackerAgent:
        agent_rng = random.Random(self.rng.getrandbits(64))
        policies = [
            persona.build_policy(self.rng, event=event, config=self.config)
            for persona in members
        ]
        agent = AttackerAgent(
            profile,
            event.account_address,
            password,
            sim=self.sim,
            service=self.service,
            geo=self.geo,
            anonymity=self.anonymity,
            ua_factory=self._ua_factory,
            rng=agent_rng,
            blacklist_registrar=self.blacklist_registrar,
            policies=policies,
        )
        gaps = sample_return_gaps(
            self.rng, profile.visits, profile.visit_span_days
        )
        # The draws above always happen; only the scheduling is gated,
        # so a filtered population replays an unfiltered one's RNG
        # stream draw-for-draw.
        if (
            self.schedule_filter is None
            or self.schedule_filter(event.account_address)
        ):
            agent.schedule(arrival, gaps)
            self.agents.append(agent)
        return agent
