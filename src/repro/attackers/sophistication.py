"""Attacker profiles: taxonomy classes and sophistication dimensions.

Section 4.8 of the paper identifies three sophistication behaviours —
configuration hiding (empty user agent), detection evasion (connecting
near the advertised decoy location), and stealth (no hijacking/spamming).
:class:`AttackerProfile` captures one visitor's position on all three,
plus the taxonomy classes governing what they do once inside.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.groups import OutletKind
from repro.netsim.anonymity import OriginKind


class TaxonomyClass(enum.Enum):
    """The paper's four access types (Section 4.2)."""

    CURIOUS = "curious"
    GOLD_DIGGER = "gold_digger"
    SPAMMER = "spammer"
    HIJACKER = "hijacker"


class SophisticationLevel(enum.Enum):
    """Coarse skill tier, correlated with the leak outlet.

    Malware-outlet criminals are professionals (stealthy, anonymised,
    config-hiding); paste-site criminals are intermediate (location
    malleability); free-forum browsers are the least sophisticated.
    """

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


@dataclass(frozen=True)
class AttackerProfile:
    """Everything that parameterises one visitor's behaviour.

    Attributes:
        attacker_id: stable identity; one profile = one device = one
            cookie per account visited.
        outlet: where this visitor obtained the credentials.
        classes: taxonomy classes of this access (non-exclusive; the
            paper observed e.g. hijacker+spammer overlaps, and no access
            was *only* a spammer).
        level: coarse sophistication tier.
        origin: how connections are routed (direct / Tor / proxy).
        origin_city: source city for direct connections (``None`` for
            anonymised ones, whose exit node has no geolocation).
        hide_user_agent: present an empty UA (malware-outlet trademark).
        location_malleable: deliberately connect from near the advertised
            decoy location to evade login risk analysis.
        android_device: connect from an Android device.
        infected_host: the source machine is itself malware-infected;
            its IP appears on the Spamhaus-style blacklist.
        visits: number of distinct visits (>= 1).
        visit_span_days: days over which return visits spread.
        personas: ground-truth persona names of this visitor, in policy
            order (``()`` for profiles built directly from taxonomy
            classes; :attr:`persona_names` derives the canonical
            equivalents then).
    """

    attacker_id: str
    outlet: OutletKind
    classes: frozenset[TaxonomyClass]
    level: SophisticationLevel
    origin: OriginKind
    origin_city: str | None
    hide_user_agent: bool
    location_malleable: bool
    android_device: bool
    infected_host: bool
    visits: int
    visit_span_days: float
    personas: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("profile needs at least one taxonomy class")
        if self.visits < 1:
            raise ValueError("visits must be >= 1")
        if (
            TaxonomyClass.SPAMMER in self.classes
            and len(self.classes) == 1
        ):
            raise ValueError(
                "no access behaves exclusively as spammer (paper, §4.2)"
            )

    @property
    def is_curious_only(self) -> bool:
        return self.classes == frozenset({TaxonomyClass.CURIOUS})

    @property
    def persona_names(self) -> tuple[str, ...]:
        """Ground-truth persona labels, deriving the paper-canonical
        names from taxonomy classes when none were recorded."""
        if self.personas:
            return self.personas
        ordered = (
            TaxonomyClass.CURIOUS,
            TaxonomyClass.GOLD_DIGGER,
            TaxonomyClass.HIJACKER,
            TaxonomyClass.SPAMMER,
        )
        return tuple(c.value for c in ordered if c in self.classes)

    @property
    def anonymised(self) -> bool:
        return self.origin is not OriginKind.DIRECT

    def has(self, taxonomy_class: TaxonomyClass) -> bool:
        return taxonomy_class in self.classes
