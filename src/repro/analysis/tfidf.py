"""TF-IDF over the two-document corpus of Section 4.6.

The paper's corpus has two documents: ``dA`` — all emails in the honey
accounts — and ``dR`` — all emails read by attackers.  Words important in
``dR`` but not in ``dA`` (large ``tfidf_R − tfidf_A``) are the words
attackers most likely searched for.

The tf term is the relative frequency of the term in the document, and
the idf term uses smoothed document frequencies (``1 + ln((1+N)/(1+df))``)
so vocabulary shared by both documents keeps a non-zero weight; vectors
are then L2-normalised per document, which keeps every weight in
``[0, 1]`` as the paper describes.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.errors import AnalysisError


@dataclass(frozen=True)
class TfidfRow:
    """One term's weights across the two documents."""

    term: str
    tfidf_r: float
    tfidf_a: float

    @property
    def difference(self) -> float:
        return self.tfidf_r - self.tfidf_a


@dataclass
class TfidfTable:
    """All term weights for the (read, all) document pair."""

    rows: dict[str, TfidfRow]

    def top_by_difference(self, k: int = 10) -> list[TfidfRow]:
        """Table 2 left: terms attackers most likely searched for."""
        ordered = sorted(
            self.rows.values(), key=lambda r: r.difference, reverse=True
        )
        return ordered[:k]

    def top_by_corpus_weight(self, k: int = 10) -> list[TfidfRow]:
        """Table 2 right: the most important terms of the whole corpus."""
        ordered = sorted(
            self.rows.values(), key=lambda r: r.tfidf_a, reverse=True
        )
        return ordered[:k]

    def row(self, term: str) -> TfidfRow:
        try:
            return self.rows[term]
        except KeyError as exc:
            raise AnalysisError(f"term {term!r} not in the corpus") from exc

    def __contains__(self, term: str) -> bool:
        return term in self.rows

    def __len__(self) -> int:
        return len(self.rows)


def term_frequencies(terms: list[str]) -> dict[str, float]:
    """Relative term frequencies of one document."""
    if not terms:
        return {}
    counts = Counter(terms)
    total = float(len(terms))
    return {term: count / total for term, count in counts.items()}


def smooth_idf(term: str, documents: list[set[str]]) -> float:
    """Smoothed inverse document frequency over ``documents``."""
    n_docs = len(documents)
    df = sum(1 for vocabulary in documents if term in vocabulary)
    return 1.0 + math.log((1.0 + n_docs) / (1.0 + df))


def compute_tfidf_table(
    read_terms: list[str], all_terms: list[str]
) -> TfidfTable:
    """Compute the full TF-IDF table for the (dR, dA) corpus.

    Raises:
        AnalysisError: when the "all emails" document is empty.
    """
    if not all_terms:
        raise AnalysisError("the all-emails document is empty")
    vocab_r = set(read_terms)
    vocab_a = set(all_terms)
    documents = [vocab_r, vocab_a]
    tf_r = term_frequencies(read_terms)
    tf_a = term_frequencies(all_terms)
    raw_r: dict[str, float] = {}
    raw_a: dict[str, float] = {}
    for term in vocab_r | vocab_a:
        idf = smooth_idf(term, documents)
        raw_r[term] = tf_r.get(term, 0.0) * idf
        raw_a[term] = tf_a.get(term, 0.0) * idf
    norm_r = math.sqrt(sum(v * v for v in raw_r.values())) or 1.0
    norm_a = math.sqrt(sum(v * v for v in raw_a.values())) or 1.0
    rows = {
        term: TfidfRow(
            term=term,
            tfidf_r=raw_r[term] / norm_r,
            tfidf_a=raw_a[term] / norm_a,
        )
        for term in raw_r
    }
    return TfidfTable(rows=rows)
