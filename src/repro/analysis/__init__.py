"""Analysis pipeline: from observed records to the paper's results.

Consumes only the :class:`~repro.core.records.ObservedDataset` the
monitoring infrastructure produced (plus external IP-reputation data),
mirroring the authors' vantage point.  Sub-modules map 1:1 onto the
paper's Section 4:

* ``accesses`` — cleaning and cookie-based unique-access extraction;
* ``taxonomy`` — the curious / gold-digger / spammer / hijacker labels;
* ``durations`` — access lengths and leak-to-access delays (Figs 1, 3, 4);
* ``geodist`` — distance-from-midpoint vectors and median circles (Fig 5);
* ``cvm`` — the two-sample Cramér-von Mises test (Section 4.5);
* ``tfidf`` / ``keywords`` — the searched-words inference (Table 2);
* ``report`` / ``figures`` — assembled tables and figure series.
"""

from repro.analysis.accesses import (
    UniqueAccess,
    clean_accesses,
    extract_unique_accesses,
)
from repro.analysis.cvm import CvmResult, cramer_von_mises_2samp
from repro.analysis.dataset import AnalysisResults, analyze
from repro.analysis.defense import DefenseReport, defense_report
from repro.analysis.durations import access_durations, time_to_first_access
from repro.analysis.ecdf import Ecdf
from repro.analysis.geodist import MedianCircle, distance_vectors, median_circles
from repro.analysis.keywords import KeywordInference, infer_searched_words
from repro.analysis.taxonomy import (
    PERSONA_OTHER_BUCKET,
    PersonaGroundTruthReport,
    PersonaLabelMetrics,
    TaxonomyLabel,
    classify_accesses,
    persona_ground_truth_report,
    persona_signature_table,
)
from repro.analysis.tfidf import TfidfTable, compute_tfidf_table

__all__ = [
    "AnalysisResults",
    "CvmResult",
    "DefenseReport",
    "Ecdf",
    "KeywordInference",
    "MedianCircle",
    "PERSONA_OTHER_BUCKET",
    "PersonaGroundTruthReport",
    "PersonaLabelMetrics",
    "TaxonomyLabel",
    "TfidfTable",
    "UniqueAccess",
    "access_durations",
    "analyze",
    "classify_accesses",
    "clean_accesses",
    "compute_tfidf_table",
    "cramer_von_mises_2samp",
    "defense_report",
    "distance_vectors",
    "extract_unique_accesses",
    "infer_searched_words",
    "median_circles",
    "persona_ground_truth_report",
    "persona_signature_table",
    "time_to_first_access",
]
