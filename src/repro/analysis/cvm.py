"""Two-sample Cramér-von Mises test (Anderson's version).

Section 4.5 of the paper tests whether the distance vectors of with-
location and without-location leak groups come from the same distribution;
p < 0.01 rejects the null.  The statistic and its asymptotic p-value are
implemented from scratch (scipy supplies only the Bessel/Gamma special
functions); tests cross-check against ``scipy.stats.cramervonmises_2samp``
where available.

References:
    Anderson (1962), "On the distribution of the two-sample Cramér-von
    Mises criterion"; Cramér (1928).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special

from repro.errors import AnalysisError


@dataclass(frozen=True)
class CvmResult:
    """Outcome of one two-sample test."""

    statistic: float  # the T statistic (Anderson's normalisation)
    p_value: float
    n: int
    m: int

    def rejects_null(self, alpha: float = 0.01) -> bool:
        """True when the samples differ significantly at level ``alpha``."""
        return self.p_value < alpha


def _cdf_cvm_asymptotic(x: float, terms: int = 12) -> float:
    """Asymptotic CDF of the Cramér-von Mises limiting distribution.

    Uses the classical series representation in terms of modified Bessel
    functions of the second kind (K_{1/4}); see Anderson & Darling (1952).
    Accurate to ~1e-10 for x in (0.02, 5].
    """
    if x <= 0.0:
        return 0.0
    if x >= 6.0:
        return 1.0
    total = 0.0
    sqrt_x = math.sqrt(x)
    for k in range(terms):
        coefficient = (
            special.gamma(k + 0.5)
            / (special.gamma(0.5) * special.factorial(k))
        )
        argument = (4 * k + 1) ** 2 / (16.0 * x)
        if argument > 700.0:
            continue  # exp underflow; term is numerically zero
        term = (
            coefficient
            * math.sqrt(4 * k + 1)
            * math.exp(-argument)
            * special.kv(0.25, argument)
        )
        total += term
    return min(1.0, total / (math.pi * sqrt_x))


def cramer_von_mises_2samp(sample_x, sample_y) -> CvmResult:
    """Two-sample Cramér-von Mises test with asymptotic p-value.

    Args:
        sample_x: first sample (e.g. distances for the with-location
            group).
        sample_y: second sample (the without-location group).

    Returns:
        A :class:`CvmResult`; ``p_value`` is the asymptotic upper tail of
        the limiting distribution after Anderson's expectation/variance
        standardisation.

    Raises:
        AnalysisError: if either sample has fewer than two observations.
    """
    x = np.asarray(sorted(sample_x), dtype=float)
    y = np.asarray(sorted(sample_y), dtype=float)
    n = int(x.size)
    m = int(y.size)
    if n < 2 or m < 2:
        raise AnalysisError("both samples need at least two observations")
    total = n + m
    combined = np.concatenate([x, y])
    # Midranks handle ties deterministically.
    ranks = _rankdata(combined)
    rank_x = ranks[:n]
    rank_y = ranks[n:]
    i = np.arange(1, n + 1, dtype=float)
    j = np.arange(1, m + 1, dtype=float)
    u = n * np.sum((rank_x - i) ** 2) + m * np.sum((rank_y - j) ** 2)
    statistic = u / (n * m * total) - (4.0 * n * m - 1.0) / (6.0 * total)
    # Standardise toward the limiting distribution (Anderson 1962).
    expected = (1.0 + 1.0 / total) / 6.0
    variance = (
        (total + 1.0)
        * (4.0 * n * m * total - 3.0 * (n * n + m * m) - 2.0 * n * m)
        / (45.0 * total * total * 4.0 * n * m)
    )
    if variance <= 0:
        raise AnalysisError("degenerate variance in CvM standardisation")
    standardized = 1.0 / 6.0 + (statistic - expected) / math.sqrt(
        45.0 * variance
    )
    p_value = max(0.0, 1.0 - _cdf_cvm_asymptotic(standardized))
    return CvmResult(
        statistic=float(statistic), p_value=float(p_value), n=n, m=m
    )


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Midranks of ``values`` (average ranks for ties), 1-based."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    sorted_values = values[order]
    index = 0
    while index < values.size:
        tie_end = index
        while (
            tie_end + 1 < values.size
            and sorted_values[tie_end + 1] == sorted_values[index]
        ):
            tie_end += 1
        midrank = 0.5 * (index + tie_end) + 1.0
        for position in range(index, tie_end + 1):
            ranks[order[position]] = midrank
        index = tie_end + 1
    return ranks
