"""Taxonomy classification of unique accesses (Section 4.2).

Four labels, non-exclusive:

* **curious** — logged in, no further observable action;
* **gold digger** — read or starred mail (value-assessment behaviour);
* **spammer** — sent email;
* **hijacker** — changed the password, which the measurement observes as
  the scraper being locked out of the account.

Script notifications do not carry cookie identifiers, so — like the
authors — we attribute actions to accesses by time correlation: an action
notification belongs to the unique access whose observation window is
nearest to it (windows are padded by the script-scan period, since the
script reports changes up to one scan after they happen).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.accesses import UniqueAccess
from repro.core.notifications import NotificationKind
from repro.core.records import ObservedDataset
from repro.sim.clock import hours


class TaxonomyLabel(enum.Enum):
    """The paper's four access types."""

    CURIOUS = "curious"
    GOLD_DIGGER = "gold_digger"
    SPAMMER = "spammer"
    HIJACKER = "hijacker"


@dataclass(slots=True)
class ClassifiedAccess:
    """A unique access plus its (possibly multiple) taxonomy labels."""

    access: UniqueAccess
    labels: set[TaxonomyLabel] = field(default_factory=set)
    attributed_reads: int = 0
    attributed_sends: int = 0
    attributed_drafts: int = 0

    @property
    def primary_label(self) -> TaxonomyLabel:
        """One label for exclusive breakdowns (Figure 2 ordering).

        Priority follows the paper's narrative: action labels dominate
        curious; hijacker < spammer < gold digger in specificity.
        """
        for label in (
            TaxonomyLabel.SPAMMER,
            TaxonomyLabel.HIJACKER,
            TaxonomyLabel.GOLD_DIGGER,
        ):
            if label in self.labels:
                return label
        return TaxonomyLabel.CURIOUS


_ACTION_KINDS = {
    NotificationKind.READ,
    NotificationKind.STARRED,
    NotificationKind.SENT,
    NotificationKind.DRAFT,
}

#: Actions further than this from any observed access window belong to
#: post-lockout activity the measurement cannot attribute (the paper had
#: the same blind spot after password changes).
ATTRIBUTION_HORIZON: float = hours(24)


def attribution_margin(scan_period: float) -> float:
    """Window padding: scripts report changes up to one scan late."""
    return scan_period * 1.5


# ----------------------------------------------------------------------
# Incremental attribution core
#
# Both the batch path below and the online classifier
# (:mod:`repro.service.classifier`) attribute actions and lockouts to
# access *spans* — ``(t0, t_last)`` pairs per unique access of one
# account — through these two functions, so live labels match what a
# batch ``analyze()`` would assign on the same event prefix.  Spans must
# be listed in the batch candidate order: ascending ``(t0, cookie_id)``.
# ----------------------------------------------------------------------


def nearest_span_index(
    spans,
    timestamp: float,
    *,
    margin: float,
    horizon: float = ATTRIBUTION_HORIZON,
) -> int | None:
    """Index of the span whose padded window is nearest ``timestamp``.

    Distance is zero inside ``[t0 - margin, t_last + margin]``, else the
    gap to the nearest window edge; the first minimal span in list order
    wins ties.  Returns ``None`` when no span is within ``horizon``.
    """
    best = -1
    best_distance = float("inf")
    for index, (t0, t_last) in enumerate(spans):
        start = t0 - margin
        end = t_last + margin
        if start <= timestamp <= end:
            distance = 0.0
        else:
            distance = min(
                abs(timestamp - start),
                abs(timestamp - end),
            )
        if distance < best_distance:
            best_distance = distance
            best = index
    if best < 0 or best_distance > horizon:
        return None
    return best


def lockout_target_index(spans, lockout_time: float) -> int | None:
    """Index of the span a scraper lockout implicates (hijacker label).

    The access whose window is nearest *before* the lockout gets the
    label; when no span starts before it, the nearest overall does.
    """
    if not spans:
        return None
    pool = [
        index for index, (t0, _) in enumerate(spans) if t0 <= lockout_time
    ] or range(len(spans))
    return min(pool, key=lambda i: abs(lockout_time - spans[i][1]))


def action_label(kind: NotificationKind) -> TaxonomyLabel | None:
    """The taxonomy label one attributed action implies (``None`` for
    drafts, which are counted but label nothing)."""
    if kind is NotificationKind.SENT:
        return TaxonomyLabel.SPAMMER
    if kind is NotificationKind.DRAFT:
        return None
    return TaxonomyLabel.GOLD_DIGGER


def _action_stream(dataset: ObservedDataset):
    """Yield ``(kind, account_address, timestamp)`` for action
    notifications, in arrival order.

    Columnar datasets are scanned over the raw id columns — kind
    filtering is integer comparison and only matching rows pay a string
    lookup; legacy datasets iterate records.  Order and content are
    identical either way.
    """
    store = getattr(dataset, "notification_store", None)
    if store is None:
        for notification in dataset.notifications:
            if notification.kind in _ACTION_KINDS:
                yield (
                    notification.kind,
                    notification.account_address,
                    notification.timestamp,
                )
        return
    id_of = store.strings.id_of
    kind_for_id = {
        ident: kind
        for kind in _ACTION_KINDS
        if (ident := id_of(kind.value)) is not None
    }
    lookup = store.strings.lookup
    account_ids = store.account_ids
    timestamps = store.timestamps
    kind_ids = store.kind_ids
    if not kind_for_id or not len(kind_ids):
        return
    # Vectorised prefilter over views of the kind-id column: heartbeats
    # dominate the notification stream, so only the action rows
    # (np.isin survivors, in append order) reach Python.  Chunk-wise so
    # a spilled store streams one mmap'd chunk at a time instead of
    # materialising the full column.
    from repro.telemetry.spill import iter_column_chunks

    wanted = np.fromiter(kind_for_id, np.int64)
    base = 0
    for kind_chunk in iter_column_chunks(kind_ids, np.int64):
        matches = np.nonzero(np.isin(kind_chunk, wanted))[0]
        for index in (matches + base).tolist():
            yield (
                kind_for_id[kind_ids[index]],
                lookup(account_ids[index]),
                timestamps[index],
            )
        base += len(kind_chunk)


def classify_accesses(
    dataset: ObservedDataset,
    unique_accesses: list[UniqueAccess],
    *,
    scan_period: float = hours(2),
) -> list[ClassifiedAccess]:
    """Label every unique access by correlating notifications in time."""
    classified = [ClassifiedAccess(access=a) for a in unique_accesses]
    by_account: dict[str, list[ClassifiedAccess]] = {}
    for item in classified:
        by_account.setdefault(item.access.account_address, []).append(item)
    spans_by_account = {
        address: [(c.access.t0, c.access.t_last) for c in candidates]
        for address, candidates in by_account.items()
    }

    margin = attribution_margin(scan_period)
    for kind, account_address, timestamp in _action_stream(dataset):
        spans = spans_by_account.get(account_address)
        if not spans:
            continue
        index = nearest_span_index(spans, timestamp, margin=margin)
        if index is None:
            continue
        best = by_account[account_address][index]
        if kind is NotificationKind.SENT:
            best.labels.add(TaxonomyLabel.SPAMMER)
            best.attributed_sends += 1
        elif kind is NotificationKind.DRAFT:
            best.attributed_drafts += 1
        else:
            best.labels.add(TaxonomyLabel.GOLD_DIGGER)
            best.attributed_reads += 1

    # Hijackers: the scraper lockout reveals the password change; the
    # access whose window is nearest before the lockout gets the label.
    for address, lockout_time in dataset.scrape_failures:
        spans = spans_by_account.get(address)
        if not spans:
            continue
        index = lockout_target_index(spans, lockout_time)
        if index is not None:
            by_account[address][index].labels.add(TaxonomyLabel.HIJACKER)

    for item in classified:
        if not item.labels:
            item.labels.add(TaxonomyLabel.CURIOUS)
    return classified


#: Bucket for ground-truth personas the signature table does not know:
#: unknown personas are *reported*, never a crash.
PERSONA_OTHER_BUCKET = "other"


@dataclass
class PersonaLabelMetrics:
    """Classifier agreement with ground truth for one taxonomy label."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 0.0


@dataclass
class PersonaGroundTruthReport:
    """How the time-correlation classifier scores against ground truth.

    The paper could only eyeball its classifier; the simulation knows
    which persona actually drove every access, so precision/recall
    become measurable.  Accesses whose ground-truth combo contains a
    persona the signature table does not know (scripted case studies,
    unregistered plugins) are counted in the ``other`` bucket and
    excluded from the per-label metrics.
    """

    total_accesses: int = 0
    matched_accesses: int = 0
    unmatched_accesses: int = 0
    #: ground-truth combo label ("a+b") -> unique accesses, with every
    #: unknown-persona combo collapsed into ``PERSONA_OTHER_BUCKET``.
    persona_access_counts: dict[str, int] = field(default_factory=dict)
    other_accesses: int = 0
    #: TaxonomyLabel value -> agreement metrics.
    label_metrics: dict[str, PersonaLabelMetrics] = field(
        default_factory=dict
    )


def persona_signature_table() -> dict[str, frozenset[str]]:
    """persona name -> the labels the classifier should emit for it.

    Built from the live persona registry, so personas registered by
    plugins (or test files) participate without any analysis edits.
    """
    from repro.attackers.personas import personas

    return personas.signature_table()


def persona_ground_truth_report(
    dataset: ObservedDataset,
    classified: list[ClassifiedAccess],
) -> PersonaGroundTruthReport:
    """Score the classifier's labels against per-access ground truth.

    Datasets without ground truth (legacy captures, external imports)
    produce a report with every access unmatched.
    """
    truth = getattr(dataset, "ground_truth_personas", None) or {}
    signatures = persona_signature_table()
    report = PersonaGroundTruthReport(total_accesses=len(classified))
    metrics = {label.value: PersonaLabelMetrics() for label in TaxonomyLabel}
    for item in classified:
        key = (item.access.account_address, item.access.cookie_id)
        names = truth.get(key)
        if names is None:
            report.unmatched_accesses += 1
            continue
        report.matched_accesses += 1
        member_signatures = [signatures.get(name) for name in names]
        if any(signature is None for signature in member_signatures):
            report.other_accesses += 1
            combo_label = PERSONA_OTHER_BUCKET
        else:
            combo_label = "+".join(names)
        report.persona_access_counts[combo_label] = (
            report.persona_access_counts.get(combo_label, 0) + 1
        )
        if combo_label == PERSONA_OTHER_BUCKET:
            continue
        expected = frozenset().union(*member_signatures)
        predicted = {label.value for label in item.labels}
        for value, metric in metrics.items():
            if value in predicted and value in expected:
                metric.true_positives += 1
            elif value in predicted:
                metric.false_positives += 1
            elif value in expected:
                metric.false_negatives += 1
    report.label_metrics = metrics
    return report


def label_counts(
    classified: list[ClassifiedAccess],
) -> dict[TaxonomyLabel, int]:
    """How many accesses carry each label (non-exclusive, like §4.2)."""
    counts = {label: 0 for label in TaxonomyLabel}
    for item in classified:
        for label in item.labels:
            counts[label] += 1
    return counts


def outlet_label_distribution(
    dataset: ObservedDataset,
    classified: list[ClassifiedAccess],
) -> dict[str, dict[TaxonomyLabel, float]]:
    """Figure 2: per-outlet share of accesses carrying each label."""
    by_outlet: dict[str, list[ClassifiedAccess]] = {}
    for item in classified:
        provenance = dataset.provenance.get(item.access.account_address)
        if provenance is None:
            continue
        by_outlet.setdefault(provenance.group.outlet.value, []).append(item)
    distribution: dict[str, dict[TaxonomyLabel, float]] = {}
    for outlet, items in by_outlet.items():
        total = len(items)
        distribution[outlet] = {
            label: (
                sum(1 for i in items if label in i.labels) / total
                if total
                else 0.0
            )
            for label in TaxonomyLabel
        }
    return distribution
