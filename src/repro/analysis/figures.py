"""Figure data series and lightweight ASCII rendering.

Each ``figure*`` function returns the exact series the corresponding
paper figure plots; ``ascii_cdf`` renders a quick terminal sketch used by
the example scripts (no plotting dependencies are available offline).
"""

from __future__ import annotations

from repro.analysis.dataset import AnalysisResults
from repro.analysis.ecdf import Ecdf
from repro.analysis.taxonomy import TaxonomyLabel
from repro.sim.clock import days


def figure1_series(results: AnalysisResults) -> dict[str, Ecdf]:
    """Figure 1: CDF of unique-access length (days) per taxonomy label."""
    series: dict[str, Ecdf] = {}
    for label in TaxonomyLabel:
        durations = results.durations_by_label.get(label, [])
        if durations:
            series[label.value] = Ecdf.from_sample(
                [d / days(1) for d in durations]
            )
    return series


def figure2_series(
    results: AnalysisResults,
) -> dict[str, dict[str, float]]:
    """Figure 2: per-outlet distribution of access types."""
    return {
        outlet: {label.value: share for label, share in shares.items()}
        for outlet, shares in results.outlet_distribution.items()
    }


def figure3_series(results: AnalysisResults) -> dict[str, Ecdf]:
    """Figure 3: CDF of leak-to-first-access delay (days) per outlet."""
    return {
        outlet: Ecdf.from_sample(delays)
        for outlet, delays in results.delays_by_outlet.items()
        if delays
    }


def figure4_series(
    results: AnalysisResults,
) -> dict[str, list[tuple[float, str]]]:
    """Figure 4: (delay_days, account) scatter per outlet."""
    return results.timeline_by_outlet


def figure5_series(results: AnalysisResults) -> dict[str, dict[str, float]]:
    """Figure 5: median circle radii (km) per category, per panel."""
    return {
        "uk": {c.category: c.radius_km for c in results.circles_uk},
        "us": {c.category: c.radius_km for c in results.circles_us},
    }


def ascii_cdf(
    series: dict[str, Ecdf],
    *,
    width: int = 60,
    max_x: float | None = None,
    title: str = "",
) -> str:
    """Render a set of ECDFs as rows of quantile markers.

    One row per series: for each of ``width`` x positions, print the
    number of series whose CDF has crossed 0.5 there — a rough but
    dependency-free sketch used by the examples.
    """
    lines = []
    if title:
        lines.append(title)
    if not series:
        return "\n".join(lines + ["(no data)"])
    upper = max_x or max(float(e.x[-1]) for e in series.values()) or 1.0
    for name, ecdf in sorted(series.items()):
        row = []
        for i in range(width):
            x = upper * (i + 1) / width
            value = ecdf.evaluate(x)
            row.append("#" if value >= 0.999 else str(int(value * 9)))
        lines.append(f"{name:<12}|{''.join(row)}| n={ecdf.n}")
    lines.append(f"{'':<12} 0 {'':<{width - 8}} {upper:.1f}")
    return "\n".join(lines)
