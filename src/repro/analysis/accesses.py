"""Cleaning and unique-access extraction.

Section 4.1: "To avoid biasing our results, we removed all accesses made
to honey accounts by IP addresses from our monitoring infrastructure.  We
also removed all accesses that originated from the city where our
monitoring infrastructure is located."  Then each *unique access* is a
cookie identifier; repeated visits with the same cookie collapse into one
access with ``t0`` (first observation) and ``t_last`` (last observation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import ObservedAccess, ObservedDataset


@dataclass(frozen=True)
class UniqueAccess:
    """One unique access: all observations of one cookie on one account."""

    account_address: str
    cookie_id: str
    t0: float
    t_last: float
    observation_count: int
    ip_addresses: tuple[str, ...]
    city: str | None
    country: str | None
    latitude: float | None
    longitude: float | None
    device_kind: str
    browser: str
    os_family: str
    empty_user_agent: bool

    @property
    def duration(self) -> float:
        """Observed activity span (a lower bound, as in the paper)."""
        return self.t_last - self.t0

    @property
    def has_location(self) -> bool:
        return self.city is not None


def clean_accesses(dataset: ObservedDataset) -> list[ObservedAccess]:
    """Drop monitoring-infrastructure rows (by IP, then by city)."""
    cleaned = []
    for access in dataset.accesses:
        if access.ip_address in dataset.monitor_ips:
            continue
        if (
            dataset.monitor_city is not None
            and access.city == dataset.monitor_city
        ):
            continue
        cleaned.append(access)
    return cleaned


def extract_unique_accesses(
    dataset: ObservedDataset,
) -> list[UniqueAccess]:
    """Collapse cleaned rows into cookie-level unique accesses.

    Location and fingerprint fields come from the first located
    observation of the cookie (cookies are per-device, so these are
    stable in practice; the first row wins on conflict).
    """
    cleaned = clean_accesses(dataset)
    by_cookie: dict[tuple[str, str], list[ObservedAccess]] = {}
    for access in cleaned:
        key = (access.account_address, access.cookie_id)
        by_cookie.setdefault(key, []).append(access)
    unique: list[UniqueAccess] = []
    for (address, cookie_id), rows in by_cookie.items():
        rows.sort(key=lambda r: r.timestamp)
        first = rows[0]
        located = next((r for r in rows if r.city is not None), first)
        unique.append(
            UniqueAccess(
                account_address=address,
                cookie_id=cookie_id,
                t0=rows[0].timestamp,
                t_last=rows[-1].timestamp,
                observation_count=len(rows),
                ip_addresses=tuple(
                    dict.fromkeys(r.ip_address for r in rows)
                ),
                city=located.city,
                country=located.country,
                latitude=located.latitude,
                longitude=located.longitude,
                device_kind=first.device_kind,
                browser=first.browser,
                os_family=first.os_family,
                empty_user_agent=(first.user_agent == ""),
                )
            )
    unique.sort(key=lambda u: (u.t0, u.account_address, u.cookie_id))
    return unique


def observed_ip_strings(unique_accesses: list[UniqueAccess]) -> set[str]:
    """All distinct IPs across unique accesses (for blacklist checks)."""
    ips: set[str] = set()
    for access in unique_accesses:
        ips.update(access.ip_addresses)
    return ips
