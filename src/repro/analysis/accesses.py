"""Cleaning and unique-access extraction.

Section 4.1: "To avoid biasing our results, we removed all accesses made
to honey accounts by IP addresses from our monitoring infrastructure.  We
also removed all accesses that originated from the city where our
monitoring infrastructure is located."  Then each *unique access* is a
cookie identifier; repeated visits with the same cookie collapse into one
access with ``t0`` (first observation) and ``t_last`` (last observation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.records import ObservedAccess, ObservedDataset


@dataclass(frozen=True, slots=True)
class UniqueAccess:
    """One unique access: all observations of one cookie on one account."""

    account_address: str
    cookie_id: str
    t0: float
    t_last: float
    observation_count: int
    ip_addresses: tuple[str, ...]
    city: str | None
    country: str | None
    latitude: float | None
    longitude: float | None
    device_kind: str
    browser: str
    os_family: str
    empty_user_agent: bool

    @property
    def duration(self) -> float:
        """Observed activity span (a lower bound, as in the paper)."""
        return self.t_last - self.t0

    @property
    def has_location(self) -> bool:
        return self.city is not None


def clean_accesses(dataset: ObservedDataset) -> list[ObservedAccess]:
    """Drop monitoring-infrastructure rows (by IP, then by city)."""
    cleaned = []
    for access in dataset.accesses:
        if access.ip_address in dataset.monitor_ips:
            continue
        if (
            dataset.monitor_city is not None
            and access.city == dataset.monitor_city
        ):
            continue
        cleaned.append(access)
    return cleaned


def extract_unique_accesses(
    dataset: ObservedDataset,
) -> list[UniqueAccess]:
    """Collapse cleaned rows into cookie-level unique accesses.

    Location and fingerprint fields come from the first located
    observation of the cookie (cookies are per-device, so these are
    stable in practice; the first row wins on conflict).

    Columnar datasets take a single-pass scan over the raw columns;
    list-backed (legacy) datasets fall through to row iteration.  Both
    paths produce identical output.
    """
    store = getattr(dataset, "access_store", None)
    if store is not None:
        return _extract_unique_columnar(dataset, store)
    return _extract_unique_rows(dataset)


def _extract_unique_columnar(dataset, store) -> list[UniqueAccess]:
    """One pass over the columns; no intermediate row objects."""
    strings = store.strings
    lookup = strings.lookup
    monitor_ip_ids = {
        ident
        for ident in map(strings.id_of, dataset.monitor_ips)
        if ident is not None
    }
    blocked_city_id = (
        strings.id_of(dataset.monitor_city)
        if dataset.monitor_city is not None
        else None
    )
    ip_ids = store.ip_ids
    city_ids = store.city_ids
    timestamps = store.timestamps
    account_ids = store.account_ids
    cookie_ids = store.cookie_ids
    by_cookie: dict[tuple[int, int], list[int]] = {}
    setdefault = by_cookie.setdefault
    # The cleaning filter runs vectorised over views of the raw int64
    # id columns — in a honey run the overwhelming majority of rows are
    # the scraper's own logins, so the per-row Python loop below only
    # ever touches the few-percent survivor set.  (numpy is already a
    # hard dependency of the analysis layer: ecdf/cvm.)  The scan goes
    # chunk by chunk: resident stores yield one full zero-copy view,
    # spilled stores one mmap'd chunk at a time, so no full column is
    # ever materialised.
    from repro.telemetry.spill import iter_column_chunks

    blocked_id = -1 if blocked_city_id is None else blocked_city_id
    monitor_id_array = (
        np.fromiter(monitor_ip_ids, np.int64) if monitor_ip_ids else None
    )
    survivors: list[int] = []
    base = 0
    for city_chunk, ip_chunk in zip(
        iter_column_chunks(city_ids, np.int64),
        iter_column_chunks(ip_ids, np.int64),
    ):
        keep = city_chunk != blocked_id
        if monitor_id_array is not None:
            keep &= ~np.isin(ip_chunk, monitor_id_array)
        survivors.extend((np.nonzero(keep)[0] + base).tolist())
        base += len(city_chunk)
    for index in survivors:
        setdefault((account_ids[index], cookie_ids[index]), []).append(index)
    unique: list[UniqueAccess] = []
    for (account_id, cookie_id), indices in by_cookie.items():
        indices.sort(key=timestamps.__getitem__)
        first = indices[0]
        located = next(
            (i for i in indices if city_ids[i]), first
        )
        unique.append(
            UniqueAccess(
                account_address=lookup(account_id),
                cookie_id=lookup(cookie_id),
                t0=timestamps[first],
                t_last=timestamps[indices[-1]],
                observation_count=len(indices),
                ip_addresses=tuple(
                    dict.fromkeys(lookup(ip_ids[i]) for i in indices)
                ),
                city=lookup(city_ids[located]),
                country=lookup(store.country_ids[located]),
                latitude=(
                    store.latitudes[located]
                    if store.latitude_mask[located]
                    else None
                ),
                longitude=(
                    store.longitudes[located]
                    if store.longitude_mask[located]
                    else None
                ),
                device_kind=lookup(store.device_ids[first]),
                browser=lookup(store.browser_ids[first]),
                os_family=lookup(store.os_ids[first]),
                empty_user_agent=(lookup(store.ua_ids[first]) == ""),
            )
        )
    unique.sort(key=lambda u: (u.t0, u.account_address, u.cookie_id))
    return unique


def _extract_unique_rows(dataset) -> list[UniqueAccess]:
    """The original object path, kept for legacy list-backed datasets."""
    cleaned = clean_accesses(dataset)
    by_cookie: dict[tuple[str, str], list[ObservedAccess]] = {}
    for access in cleaned:
        key = (access.account_address, access.cookie_id)
        by_cookie.setdefault(key, []).append(access)
    unique: list[UniqueAccess] = []
    for (address, cookie_id), rows in by_cookie.items():
        rows.sort(key=lambda r: r.timestamp)
        first = rows[0]
        located = next((r for r in rows if r.city is not None), first)
        unique.append(
            UniqueAccess(
                account_address=address,
                cookie_id=cookie_id,
                t0=rows[0].timestamp,
                t_last=rows[-1].timestamp,
                observation_count=len(rows),
                ip_addresses=tuple(
                    dict.fromkeys(r.ip_address for r in rows)
                ),
                city=located.city,
                country=located.country,
                latitude=located.latitude,
                longitude=located.longitude,
                device_kind=first.device_kind,
                browser=first.browser,
                os_family=first.os_family,
                empty_user_agent=(first.user_agent == ""),
                )
            )
    unique.sort(key=lambda u: (u.t0, u.account_address, u.cookie_id))
    return unique


def observed_ip_strings(unique_accesses: list[UniqueAccess]) -> set[str]:
    """All distinct IPs across unique accesses (for blacklist checks)."""
    ips: set[str] = set()
    for access in unique_accesses:
        ips.update(access.ip_addresses)
    return ips
