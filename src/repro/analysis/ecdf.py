"""Empirical cumulative distribution functions.

Used for Figure 1 (access lengths) and Figure 3 (leak-to-access delays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class Ecdf:
    """An ECDF over a sample, with evaluation and quantile helpers."""

    x: np.ndarray  # sorted sample values
    y: np.ndarray  # cumulative fractions in (0, 1]

    @classmethod
    def from_sample(cls, values) -> "Ecdf":
        """Build an ECDF from any non-empty iterable of numbers."""
        array = np.asarray(sorted(values), dtype=float)
        if array.size == 0:
            raise AnalysisError("cannot build an ECDF from an empty sample")
        fractions = np.arange(1, array.size + 1, dtype=float) / array.size
        return cls(x=array, y=fractions)

    @property
    def n(self) -> int:
        return int(self.x.size)

    def evaluate(self, value: float) -> float:
        """P(X <= value)."""
        return float(np.searchsorted(self.x, value, side="right")) / self.n

    def quantile(self, q: float) -> float:
        """Smallest sample value v with ECDF(v) >= q."""
        if not 0.0 < q <= 1.0:
            raise AnalysisError(f"quantile must be in (0, 1], got {q}")
        index = int(np.ceil(q * self.n)) - 1
        return float(self.x[max(index, 0)])

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def series(self) -> list[tuple[float, float]]:
        """(x, y) pairs for plotting."""
        return list(zip(self.x.tolist(), self.y.tolist()))
