"""Assembled tables: the Section 4 headline numbers and Table 2 text.

Functions here turn :class:`~repro.analysis.dataset.AnalysisResults` into
printable rows matching what the paper reports, used by the benchmarks
and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cvm import CvmResult, cramer_von_mises_2samp
from repro.analysis.dataset import AnalysisResults
from repro.analysis.taxonomy import (
    PERSONA_OTHER_BUCKET as _OTHER_LABEL,
    TaxonomyLabel,
)
from repro.errors import AnalysisError


@dataclass
class OverviewStats:
    """The Section 4.1 / 4.4 / 4.5 headline numbers."""

    unique_accesses: int
    emails_read: int
    emails_sent: int
    unique_drafts: int
    blocked_accounts: int
    located_accesses: int
    unlocated_accesses: int
    country_count: int
    blacklist_hits: int
    accesses_per_outlet: dict[str, int] = field(default_factory=dict)
    label_totals: dict[str, int] = field(default_factory=dict)
    empty_ua_share_by_outlet: dict[str, float] = field(default_factory=dict)
    android_share_by_outlet: dict[str, float] = field(default_factory=dict)


def overview(
    results: AnalysisResults, blacklisted_ips: set[str] | None = None
) -> OverviewStats:
    """Compute the overview statistics block."""
    per_outlet: dict[str, int] = {}
    empty_ua: dict[str, list[bool]] = {}
    android: dict[str, list[bool]] = {}
    for access in results.unique_accesses:
        provenance = results.dataset.provenance[access.account_address]
        outlet = provenance.group.outlet.value
        per_outlet[outlet] = per_outlet.get(outlet, 0) + 1
        empty_ua.setdefault(outlet, []).append(access.empty_user_agent)
        android.setdefault(outlet, []).append(
            access.device_kind == "android"
        )
    hits = 0
    if blacklisted_ips:
        hits = len(results.observed_ips() & blacklisted_ips)
    return OverviewStats(
        unique_accesses=results.total_unique_accesses,
        emails_read=results.emails_read,
        emails_sent=results.emails_sent,
        unique_drafts=results.unique_drafts,
        blocked_accounts=len(results.dataset.blocked_accounts),
        located_accesses=results.located_accesses,
        unlocated_accesses=results.unlocated_accesses,
        country_count=len(results.countries),
        blacklist_hits=hits,
        accesses_per_outlet=per_outlet,
        label_totals={
            label.value: count
            for label, count in results.label_totals.items()
        },
        empty_ua_share_by_outlet={
            outlet: sum(flags) / len(flags)
            for outlet, flags in empty_ua.items()
            if flags
        },
        android_share_by_outlet={
            outlet: sum(flags) / len(flags)
            for outlet, flags in android.items()
            if flags
        },
    )


#: The four Section 4.5 tests, the single source of truth shared with
#: the batch API: (result name, panel, with-location category,
#: no-location category).
CVM_TESTS: tuple[tuple[str, str, str, str], ...] = (
    ("paste_uk_p", "uk", "paste_uk", "paste_noloc"),
    ("paste_us_p", "us", "paste_us", "paste_noloc"),
    ("forum_uk_p", "uk", "forum_uk", "forum_noloc"),
    ("forum_us_p", "us", "forum_us", "forum_noloc"),
)


@dataclass(frozen=True)
class SignificanceTests:
    """The four Cramér-von Mises tests of Section 4.5."""

    paste_uk: CvmResult
    paste_us: CvmResult
    forum_uk: CvmResult
    forum_us: CvmResult

    def summary(self) -> dict[str, float]:
        return {
            "paste_uk_p": self.paste_uk.p_value,
            "paste_us_p": self.paste_us.p_value,
            "forum_uk_p": self.forum_uk.p_value,
            "forum_us_p": self.forum_us.p_value,
        }


def significance_tests(results: AnalysisResults) -> SignificanceTests:
    """With-location vs no-location distance-vector tests.

    Each test compares the distance vector of a with-location category
    against the matching no-location category on the same midpoint
    panel.  Raises :class:`~repro.errors.AnalysisError` when a panel
    lacks samples; :func:`cvm_panel_p_values` is the tolerant variant.
    """
    panels = {"uk": results.distances_uk, "us": results.distances_us}
    outcomes = {
        name: cramer_von_mises_2samp(
            panels[panel].get(with_loc, []), panels[panel].get(no_loc, [])
        )
        for name, panel, with_loc, no_loc in CVM_TESTS
    }
    return SignificanceTests(
        paste_uk=outcomes["paste_uk_p"],
        paste_us=outcomes["paste_us_p"],
        forum_uk=outcomes["forum_uk_p"],
        forum_us=outcomes["forum_us_p"],
    )


def cvm_panel_p_values(
    distances_uk: dict[str, list[float]],
    distances_us: dict[str, list[float]],
) -> dict[str, float]:
    """Guarded CvM p-values over distance-vector panels.

    Tests whose samples are too small (fewer than two observations on
    either side) are skipped instead of raising, so scenarios that drop
    whole outlets still report the tests they can support.
    """
    panels = {"uk": distances_uk, "us": distances_us}
    p_values: dict[str, float] = {}
    for name, panel, with_loc, no_loc in CVM_TESTS:
        x = panels[panel].get(with_loc, [])
        y = panels[panel].get(no_loc, [])
        try:
            p_values[name] = cramer_von_mises_2samp(x, y).p_value
        except AnalysisError:
            continue
    return p_values


def format_table2(results: AnalysisResults, k: int = 10) -> str:
    """Render Table 2 (searched words vs corpus words) as text."""
    searched = results.keywords.top_searched(k)
    corpus = results.keywords.top_corpus(k)
    lines = [
        f"{'searched word':<16}{'tfidfR':>9}{'tfidfA':>9}{'diff':>9}"
        f"   |   {'common word':<16}{'tfidfR':>9}{'tfidfA':>9}{'diff':>9}"
    ]
    for left, right in zip(searched, corpus):
        lines.append(
            f"{left.term:<16}{left.tfidf_r:>9.4f}{left.tfidf_a:>9.4f}"
            f"{left.difference:>9.4f}   |   "
            f"{right.term:<16}{right.tfidf_r:>9.4f}{right.tfidf_a:>9.4f}"
            f"{right.difference:>9.4f}"
        )
    return "\n".join(lines)


def format_taxonomy_summary(results: AnalysisResults) -> str:
    """Render the Section 4.2 access-type counts as text."""
    lines = [f"unique accesses: {results.total_unique_accesses}"]
    for label in TaxonomyLabel:
        lines.append(
            f"  {label.value:<12} {results.label_totals[label]:>5}"
        )
    return "\n".join(lines)


def format_persona_report(results: AnalysisResults) -> str:
    """Render the ground-truth persona report as text.

    Shows which personas actually drove the observed accesses and how
    well the paper's time-correlation classifier recovered each label —
    a measurement the original deployment could not make.
    """
    report = results.persona_report
    lines = [
        f"ground truth: {report.matched_accesses} of "
        f"{report.total_accesses} unique accesses matched to personas "
        f"({report.other_accesses} in the '{_OTHER_LABEL}' bucket, "
        f"{report.unmatched_accesses} unmatched)"
    ]
    if report.persona_access_counts:
        width = max(len(name) for name in report.persona_access_counts)
        for name, count in sorted(
            report.persona_access_counts.items(),
            key=lambda kv: (-kv[1], kv[0]),
        ):
            lines.append(f"  {name:<{width}} {count:>5}")
    if report.matched_accesses > report.other_accesses:
        lines.append("classifier vs ground truth (per label):")
        for value, metric in sorted(report.label_metrics.items()):
            lines.append(
                f"  {value:<12} precision={metric.precision:.2f} "
                f"recall={metric.recall:.2f} "
                f"(tp={metric.true_positives} fp={metric.false_positives} "
                f"fn={metric.false_negatives})"
            )
    return "\n".join(lines)
