"""Canonical fingerprinting of :class:`AnalysisResults`.

Reduces every Section 4 analysis field to a canonical, platform-stable
JSON form and hashes it.  Two consumers:

* the golden equivalence tests (``tests/test_persona_golden.py``) pin
  the ``paper_default`` output against refactors of the attacker and
  telemetry layers;
* the sharded runner (:mod:`repro.shard`, ``repro run --shards K
  --fingerprint``) proves a merged multi-process run equals the serial
  one without shipping whole datasets around.

Originally this lived in ``tests/_golden.py``; it moved into the
package when the CLI grew a ``--fingerprint`` flag (the tests now
re-export from here).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json

#: The analysis fields covered by a fingerprint.  This is the
#: pre-persona-refactor field set on purpose: new fields (for example
#: ground-truth persona reports) may be added to ``AnalysisResults``
#: without invalidating existing pins, but none of these may change.
FINGERPRINT_FIELDS = (
    "unique_accesses",
    "classified",
    "label_totals",
    "outlet_distribution",
    "durations_by_label",
    "delays_by_outlet",
    "delays_by_group",
    "timeline_by_outlet",
    "circles_uk",
    "circles_us",
    "distances_uk",
    "distances_us",
    "keywords",
    "emails_read",
    "emails_sent",
    "unique_drafts",
    "located_accesses",
    "unlocated_accesses",
    "countries",
    "scan_period",
)


def canonicalize(value):
    """Reduce ``value`` to JSON-safe data with deterministic ordering.

    Floats are rounded to 10 significant digits: the TF-IDF pipeline
    sums over hash-ordered string sets, so its float outputs differ in
    the last ulp between processes (PYTHONHASHSEED); 10 digits is far
    below any behavioural change while stable across runs.  Sets are
    sorted by their canonical JSON encoding; dict items are sorted the
    same way, so enum keys and string keys both order
    deterministically.
    """
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, float):
        return {"__float__": f"{value:.10g}"}
    if isinstance(value, (set, frozenset)):
        items = [canonicalize(item) for item in value]
        return {"__set__": sorted(items, key=_sort_key)}
    if isinstance(value, dict):
        items = [
            (canonicalize(key), canonicalize(item))
            for key, item in value.items()
        ]
        return {"__dict__": sorted(items, key=lambda kv: _sort_key(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__}")


def _sort_key(canonical) -> str:
    return json.dumps(canonical, sort_keys=True)


def field_digest(analysis, name: str) -> str:
    """The sha256 hex digest of one canonicalized analysis field."""
    canonical = canonicalize(getattr(analysis, name))
    encoded = json.dumps(canonical, sort_keys=True).encode()
    return hashlib.sha256(encoded).hexdigest()


def analysis_fingerprint(analysis) -> dict:
    """Per-field digests plus headline numbers for readable diffs."""
    return {
        "fields": {
            name: field_digest(analysis, name)
            for name in FINGERPRINT_FIELDS
        },
        "headline": {
            "unique_accesses": analysis.total_unique_accesses,
            "emails_read": analysis.emails_read,
            "emails_sent": analysis.emails_sent,
            "unique_drafts": analysis.unique_drafts,
            "label_totals": {
                label.value: count
                for label, count in sorted(
                    analysis.label_totals.items(), key=lambda kv: kv[0].value
                )
            },
            "located_accesses": analysis.located_accesses,
            "unlocated_accesses": analysis.unlocated_accesses,
            "countries": sorted(analysis.countries),
        },
    }


def fingerprint_digest(analysis) -> str:
    """One sha256 over the whole fingerprint (the CLI's one-liner)."""
    fingerprint = analysis_fingerprint(analysis)
    encoded = json.dumps(fingerprint, sort_keys=True).encode()
    return hashlib.sha256(encoded).hexdigest()
