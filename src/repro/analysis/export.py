"""Export analysis results to JSON and CSV.

Downstream users (and the paper-comparison tooling) need the regenerated
tables and figure series as plain files.  ``export_results`` writes one
JSON document with every artifact plus per-figure CSV series into a
directory, so results can be diffed across runs and plotted externally.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.analysis.dataset import AnalysisResults
from repro.analysis.figures import (
    figure1_series,
    figure2_series,
    figure3_series,
    figure4_series,
    figure5_series,
)
from repro.analysis.report import overview, significance_tests


def results_to_dict(
    results: AnalysisResults, blacklisted_ips: set[str] | None = None
) -> dict:
    """Bundle every paper artifact into one JSON-serialisable dict."""
    stats = overview(results, blacklisted_ips)
    tests = significance_tests(results)
    return {
        "overview": {
            "unique_accesses": stats.unique_accesses,
            "emails_read": stats.emails_read,
            "emails_sent": stats.emails_sent,
            "unique_drafts": stats.unique_drafts,
            "blocked_accounts": stats.blocked_accounts,
            "located_accesses": stats.located_accesses,
            "unlocated_accesses": stats.unlocated_accesses,
            "country_count": stats.country_count,
            "blacklist_hits": stats.blacklist_hits,
            "accesses_per_outlet": stats.accesses_per_outlet,
            "label_totals": stats.label_totals,
            "empty_ua_share_by_outlet": stats.empty_ua_share_by_outlet,
            "android_share_by_outlet": stats.android_share_by_outlet,
        },
        "figure2": figure2_series(results),
        "figure5": figure5_series(results),
        "cvm_tests": tests.summary(),
        "table2": {
            "searched": [
                {
                    "term": row.term,
                    "tfidf_r": row.tfidf_r,
                    "tfidf_a": row.tfidf_a,
                    "difference": row.difference,
                }
                for row in results.keywords.top_searched(10)
            ],
            "corpus": [
                {
                    "term": row.term,
                    "tfidf_r": row.tfidf_r,
                    "tfidf_a": row.tfidf_a,
                    "difference": row.difference,
                }
                for row in results.keywords.top_corpus(10)
            ],
        },
    }


def _write_csv(path: Path, header: list[str], rows) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_results(
    results: AnalysisResults,
    output_dir: str | Path,
    *,
    blacklisted_ips: set[str] | None = None,
) -> list[Path]:
    """Write the full artifact bundle into ``output_dir``.

    Produces ``results.json`` plus one CSV per figure series.  Returns
    the list of files written.
    """
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    json_path = directory / "results.json"
    json_path.write_text(
        json.dumps(
            results_to_dict(results, blacklisted_ips), indent=2,
            sort_keys=True,
        )
    )
    written.append(json_path)

    figure1 = directory / "figure1_access_length_cdf.csv"
    rows = [
        (label, f"{x:.6f}", f"{y:.6f}")
        for label, ecdf in sorted(figure1_series(results).items())
        for x, y in ecdf.series()
    ]
    _write_csv(figure1, ["label", "duration_days", "cdf"], rows)
    written.append(figure1)

    figure3 = directory / "figure3_time_to_access_cdf.csv"
    rows = [
        (outlet, f"{x:.6f}", f"{y:.6f}")
        for outlet, ecdf in sorted(figure3_series(results).items())
        for x, y in ecdf.series()
    ]
    _write_csv(figure3, ["outlet", "delay_days", "cdf"], rows)
    written.append(figure3)

    figure4 = directory / "figure4_access_timeline.csv"
    rows = [
        (outlet, f"{delay:.6f}", account)
        for outlet, points in sorted(figure4_series(results).items())
        for delay, account in points
    ]
    _write_csv(figure4, ["outlet", "delay_days", "account"], rows)
    written.append(figure4)

    distances = directory / "figure5_distance_vectors.csv"
    rows = [
        ("uk", category, f"{value:.3f}")
        for category, values in sorted(results.distances_uk.items())
        for value in values
    ] + [
        ("us", category, f"{value:.3f}")
        for category, values in sorted(results.distances_us.items())
        for value in values
    ]
    _write_csv(distances, ["panel", "category", "distance_km"], rows)
    written.append(distances)

    return written
