"""Distance-from-midpoint analysis (Figure 5).

For every located unique access the haversine distance to the advertised
midpoint (London for the UK experiment, Pontiac IL for the US one) is
computed; the per-category medians are the radii of the circles in
Figures 5a/5b.  Categories combine the outlet (paste / forum) with
whether the leak advertised location information.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.accesses import UniqueAccess
from repro.core.groups import LocationHint, OutletKind
from repro.core.records import ObservedDataset
from repro.netsim.cities import UK_MIDPOINT, US_MIDPOINT
from repro.netsim.geo import haversine_km

#: The categories plotted in each Figure 5 panel.
UK_CATEGORIES = ("paste_noloc", "paste_uk", "forum_noloc", "forum_uk")
US_CATEGORIES = ("paste_noloc", "paste_us", "forum_noloc", "forum_us")


@dataclass(frozen=True)
class MedianCircle:
    """One circle of Figure 5: a category and its median radius."""

    category: str
    midpoint: str  # "uk" or "us"
    radius_km: float
    sample_size: int


def _category_of(
    outlet: OutletKind, hint: LocationHint
) -> str | None:
    if outlet is OutletKind.MALWARE:
        return None  # essentially all Tor; excluded in §4.5
    prefix = "paste" if outlet is OutletKind.PASTE else "forum"
    if hint is LocationHint.NONE:
        return f"{prefix}_noloc"
    return f"{prefix}_{hint.value}"


def distance_vectors(
    dataset: ObservedDataset,
    unique_accesses: list[UniqueAccess],
    midpoint: str,
) -> dict[str, list[float]]:
    """Distances (km) from the requested midpoint, keyed by category.

    Args:
        midpoint: ``"uk"`` (London) or ``"us"`` (Pontiac, IL).
    """
    if midpoint == "uk":
        center = UK_MIDPOINT
    elif midpoint == "us":
        center = US_MIDPOINT
    else:
        raise ValueError(f"midpoint must be 'uk' or 'us', got {midpoint!r}")
    vectors: dict[str, list[float]] = {}
    for access in unique_accesses:
        if not access.has_location:
            continue
        provenance = dataset.provenance.get(access.account_address)
        if provenance is None:
            continue
        category = _category_of(
            provenance.group.outlet, provenance.group.location_hint
        )
        if category is None:
            continue
        assert access.latitude is not None and access.longitude is not None
        distance = haversine_km(
            access.latitude,
            access.longitude,
            center.latitude,
            center.longitude,
        )
        vectors.setdefault(category, []).append(distance)
    return vectors


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def median_circles(
    dataset: ObservedDataset,
    unique_accesses: list[UniqueAccess],
    midpoint: str,
) -> list[MedianCircle]:
    """The Figure 5 circles for one midpoint panel."""
    categories = UK_CATEGORIES if midpoint == "uk" else US_CATEGORIES
    vectors = distance_vectors(dataset, unique_accesses, midpoint)
    circles = []
    for category in categories:
        values = vectors.get(category, [])
        if not values:
            continue
        circles.append(
            MedianCircle(
                category=category,
                midpoint=midpoint,
                radius_km=_median(values),
                sample_size=len(values),
            )
        )
    return circles
