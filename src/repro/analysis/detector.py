"""Behavioural anomaly detection (the paper's Discussion proposal).

Section 5 sketches two defences the honey-account findings motivate:

* "Anomaly detection systems could be trained adaptively on words being
  searched for over a period of time, by the legitimate account owner.
  A deviation of searches from those words would then be flagged";
* "Similarly, anomaly detection systems could be trained on durations of
  connections during benign usage, and deviations from those could be
  flagged as anomalous."

This module implements both detectors and a combined scorer.  The
vocabulary model scores how surprising a text is under the owner's
smoothed unigram distribution; the duration model scores log-duration
deviations.  Both are simple, interpretable baselines — exactly the kind
of system the paper proposes building on this data.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.corpus.text import prepare_document
from repro.errors import AnalysisError


@dataclass
class VocabularyModel:
    """Smoothed unigram model of the owner's typical vocabulary.

    The anomaly score of a text is its mean per-term surprisal
    (negative log probability, base e) under the trained model with
    add-one smoothing; unseen terms are maximally surprising.
    """

    _counts: Counter = field(default_factory=Counter)
    _total: int = 0

    def train(self, texts: Iterable[str]) -> None:
        """Accumulate the owner's benign content."""
        for text in texts:
            terms = prepare_document([text])
            self._counts.update(terms)
            self._total += len(terms)

    @property
    def vocabulary_size(self) -> int:
        return len(self._counts)

    @property
    def is_trained(self) -> bool:
        return self._total > 0

    def term_surprisal(self, term: str) -> float:
        """-ln P(term) with add-one smoothing."""
        if not self.is_trained:
            raise AnalysisError("vocabulary model is untrained")
        numerator = self._counts.get(term, 0) + 1
        denominator = self._total + self.vocabulary_size + 1
        return -math.log(numerator / denominator)

    def score_text(self, text: str) -> float:
        """Mean per-term surprisal of ``text`` (0 for empty texts)."""
        terms = prepare_document([text])
        if not terms:
            return 0.0
        return sum(self.term_surprisal(t) for t in terms) / len(terms)

    def score_terms(self, terms: list[str]) -> float:
        """Mean surprisal of a pre-tokenised term list."""
        if not terms:
            return 0.0
        return sum(self.term_surprisal(t) for t in terms) / len(terms)


@dataclass
class DurationModel:
    """Gaussian model over log-durations of benign sessions."""

    _log_durations: list[float] = field(default_factory=list)

    def train(self, durations_seconds: Iterable[float]) -> None:
        for duration in durations_seconds:
            if duration <= 0:
                continue
            self._log_durations.append(math.log(duration))

    @property
    def is_trained(self) -> bool:
        return len(self._log_durations) >= 2

    def z_score(self, duration_seconds: float) -> float:
        """Standardised deviation of a session duration from baseline."""
        if not self.is_trained:
            raise AnalysisError("duration model needs >= 2 samples")
        if duration_seconds <= 0:
            return 0.0
        n = len(self._log_durations)
        mean = sum(self._log_durations) / n
        variance = sum(
            (v - mean) ** 2 for v in self._log_durations
        ) / max(n - 1, 1)
        std = math.sqrt(variance) or 1e-9
        return abs(math.log(duration_seconds) - mean) / std


@dataclass(frozen=True)
class AnomalyVerdict:
    """Combined decision for one observed access."""

    vocabulary_score: float
    duration_z: float
    is_anomalous: bool


@dataclass
class AccountAnomalyDetector:
    """Combined detector, per the paper's Discussion section.

    Args:
        vocabulary_threshold: mean-surprisal level above which content
            behaviour is anomalous.  The default sits midway between
            corpus-typical reads (~4.3 nats/term) and blackmail content
            (~8.0 nats/term) in this simulator; a real deployment would
            calibrate on held-out benign traffic.
        duration_z_threshold: |z| above which durations are anomalous.
    """

    vocabulary_threshold: float = 6.0
    duration_z_threshold: float = 3.0
    vocabulary: VocabularyModel = field(default_factory=VocabularyModel)
    durations: DurationModel = field(default_factory=DurationModel)

    def train(
        self,
        benign_texts: Iterable[str],
        benign_durations: Iterable[float],
    ) -> None:
        """Fit both baselines on benign owner behaviour."""
        self.vocabulary.train(benign_texts)
        self.durations.train(benign_durations)

    def assess(
        self, accessed_text: str, duration_seconds: float
    ) -> AnomalyVerdict:
        """Score one access (the content it touched + how long it was)."""
        vocabulary_score = self.vocabulary.score_text(accessed_text)
        duration_z = (
            self.durations.z_score(duration_seconds)
            if self.durations.is_trained
            else 0.0
        )
        return AnomalyVerdict(
            vocabulary_score=vocabulary_score,
            duration_z=duration_z,
            is_anomalous=(
                vocabulary_score > self.vocabulary_threshold
                or duration_z > self.duration_z_threshold
            ),
        )
