"""One-call analysis entry point.

``analyze(dataset)`` runs the full Section 4 pipeline over an observed
dataset and returns an :class:`AnalysisResults` bundle the report,
figures, examples and benchmarks all build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.accesses import (
    UniqueAccess,
    extract_unique_accesses,
    observed_ip_strings,
)
from repro.analysis.durations import (
    access_durations,
    access_timeline,
    group_time_to_first_access,
    time_to_first_access,
)
from repro.analysis.geodist import MedianCircle, distance_vectors, median_circles
from repro.analysis.keywords import KeywordInference, infer_searched_words
from repro.analysis.taxonomy import (
    ClassifiedAccess,
    PersonaGroundTruthReport,
    TaxonomyLabel,
    classify_accesses,
    label_counts,
    outlet_label_distribution,
    persona_ground_truth_report,
)
from repro.core.notifications import NotificationKind
from repro.core.records import ObservedDataset
from repro.sim.clock import hours


@dataclass
class AnalysisResults:
    """Everything Section 4 derives from the observed dataset."""

    dataset: ObservedDataset
    unique_accesses: list[UniqueAccess]
    classified: list[ClassifiedAccess]
    label_totals: dict[TaxonomyLabel, int]
    outlet_distribution: dict[str, dict[TaxonomyLabel, float]]
    durations_by_label: dict[TaxonomyLabel, list[float]]
    delays_by_outlet: dict[str, list[float]]
    delays_by_group: dict[str, list[float]]
    timeline_by_outlet: dict[str, list[tuple[float, str]]]
    circles_uk: list[MedianCircle]
    circles_us: list[MedianCircle]
    distances_uk: dict[str, list[float]]
    distances_us: dict[str, list[float]]
    keywords: KeywordInference
    emails_read: int = 0
    emails_sent: int = 0
    unique_drafts: int = 0
    located_accesses: int = 0
    unlocated_accesses: int = 0
    countries: set[str] = field(default_factory=set)
    #: The scan period the accesses were classified under; recorded so
    #: downstream consumers can tell which cadence produced the labels.
    scan_period: float = hours(2)
    #: Classifier precision/recall against the simulation's per-access
    #: ground-truth persona labels (all-unmatched when the dataset
    #: carries no ground truth).
    persona_report: PersonaGroundTruthReport = field(
        default_factory=PersonaGroundTruthReport
    )
    #: Lazily-built outlet -> unique accesses index; callers loop over
    #: outlets (report, figures), so one pass builds all buckets.
    _outlet_index: dict[str, list[UniqueAccess]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def total_unique_accesses(self) -> int:
        return len(self.unique_accesses)

    def accesses_for_outlet(self, outlet: str) -> list[UniqueAccess]:
        if self._outlet_index is None:
            index: dict[str, list[UniqueAccess]] = {}
            for access in self.unique_accesses:
                provenance = self.dataset.provenance[access.account_address]
                index.setdefault(
                    provenance.group.outlet.value, []
                ).append(access)
            self._outlet_index = index
        return list(self._outlet_index.get(outlet, ()))

    def observed_ips(self) -> set[str]:
        return observed_ip_strings(self.unique_accesses)


def _count_actions(dataset: ObservedDataset) -> tuple[int, int, int]:
    """(unique emails read, emails sent, unique drafts) from notifications.

    Columnar datasets are counted straight off the interned-id columns
    (string ids are bijective with the strings, so the distinct-key
    counts are identical); legacy datasets iterate records.
    """
    store = getattr(dataset, "notification_store", None)
    if store is not None:
        import numpy as np

        from repro.telemetry.spill import iter_column_chunks

        id_of = store.strings.id_of
        read_id = id_of(NotificationKind.READ.value)
        sent_id = id_of(NotificationKind.SENT.value)
        draft_id = id_of(NotificationKind.DRAFT.value)
        read_keys: set[tuple[int, int]] = set()
        draft_keys: set[tuple[int, int]] = set()
        sent = 0
        # Chunk-aligned scan (kind/account/message columns flush in
        # lockstep) so a spilled store never materialises a full column;
        # vectorised masks keep the Python work to the matching rows.
        for kind_chunk, account_chunk, message_chunk in zip(
            iter_column_chunks(store.kind_ids, np.int64),
            iter_column_chunks(store.account_ids, np.int64),
            iter_column_chunks(store.message_ids, np.int64),
        ):
            if read_id is not None:
                mask = kind_chunk == read_id
                read_keys.update(
                    zip(
                        account_chunk[mask].tolist(),
                        message_chunk[mask].tolist(),
                    )
                )
            if sent_id is not None:
                sent += int(np.count_nonzero(kind_chunk == sent_id))
            if draft_id is not None:
                mask = kind_chunk == draft_id
                draft_keys.update(
                    zip(
                        account_chunk[mask].tolist(),
                        message_chunk[mask].tolist(),
                    )
                )
        return len(read_keys), sent, len(draft_keys)
    read_messages: set[tuple[str, str]] = set()
    draft_messages: set[tuple[str, str]] = set()
    sent = 0
    for notification in dataset.notifications:
        key = (notification.account_address, notification.message_id)
        if notification.kind is NotificationKind.READ:
            read_messages.add(key)
        elif notification.kind is NotificationKind.SENT:
            sent += 1
        elif notification.kind is NotificationKind.DRAFT:
            draft_messages.add(key)
    return len(read_messages), sent, len(draft_messages)


def analyze_experiment(result) -> AnalysisResults:
    """Analyse an :class:`~repro.core.experiment.ExperimentResult`.

    Unlike calling :func:`analyze` on the bare dataset, this always uses
    the scan period the run was configured with, so taxonomy labels are
    classified against the cadence that actually produced the
    notifications.  (:class:`repro.api.RunResult` bakes the same
    guarantee into its cached ``analysis`` property.)
    """
    return analyze(result.dataset, scan_period=result.config.scan_period)


def analyze(
    dataset: ObservedDataset, *, scan_period: float = hours(2)
) -> AnalysisResults:
    """Run the full analysis pipeline over one observed dataset.

    ``scan_period`` must match the monitoring cadence that produced the
    dataset; prefer :func:`analyze_experiment` (or
    ``RunResult.analysis``) which propagate it automatically.
    """
    unique_accesses = extract_unique_accesses(dataset)
    classified = classify_accesses(
        dataset, unique_accesses, scan_period=scan_period
    )
    emails_read, emails_sent, unique_drafts = _count_actions(dataset)
    located = [a for a in unique_accesses if a.has_location]
    results = AnalysisResults(
        dataset=dataset,
        unique_accesses=unique_accesses,
        classified=classified,
        label_totals=label_counts(classified),
        outlet_distribution=outlet_label_distribution(dataset, classified),
        durations_by_label=access_durations(classified),
        delays_by_outlet=time_to_first_access(dataset, unique_accesses),
        delays_by_group=group_time_to_first_access(
            dataset, unique_accesses
        ),
        timeline_by_outlet=access_timeline(dataset, unique_accesses),
        circles_uk=median_circles(dataset, unique_accesses, "uk"),
        circles_us=median_circles(dataset, unique_accesses, "us"),
        distances_uk=distance_vectors(dataset, unique_accesses, "uk"),
        distances_us=distance_vectors(dataset, unique_accesses, "us"),
        keywords=infer_searched_words(dataset),
        emails_read=emails_read,
        emails_sent=emails_sent,
        unique_drafts=unique_drafts,
        located_accesses=len(located),
        unlocated_accesses=len(unique_accesses) - len(located),
        countries={a.country for a in located if a.country},
        scan_period=scan_period,
        persona_report=persona_ground_truth_report(dataset, classified),
    )
    return results
