"""Access lengths and leak-to-access delays (Figures 1, 3 and 4).

Every duration is computed from observed cookie timestamps only:
``duration = t_last − t0`` per unique access (a lower bound once a
hijacker locks out the scraper, as the paper notes), and
``delay = t0 − leak_time`` for the time between a group's leak and each
cookie's first observation.
"""

from __future__ import annotations

from repro.analysis.accesses import UniqueAccess
from repro.analysis.taxonomy import ClassifiedAccess, TaxonomyLabel
from repro.core.records import ObservedDataset
from repro.sim.clock import days


def access_durations(
    classified: list[ClassifiedAccess],
) -> dict[TaxonomyLabel, list[float]]:
    """Duration samples (seconds) per taxonomy label, non-exclusive."""
    samples: dict[TaxonomyLabel, list[float]] = {
        label: [] for label in TaxonomyLabel
    }
    for item in classified:
        for label in item.labels:
            samples[label].append(item.access.duration)
    return samples


def time_to_first_access(
    dataset: ObservedDataset,
    unique_accesses: list[UniqueAccess],
) -> dict[str, list[float]]:
    """Leak-to-first-observation delays (days), keyed by outlet."""
    delays: dict[str, list[float]] = {}
    for access in unique_accesses:
        provenance = dataset.provenance.get(access.account_address)
        if provenance is None:
            continue
        delay_days = (access.t0 - provenance.leak_time) / days(1)
        delays.setdefault(provenance.group.outlet.value, []).append(
            max(delay_days, 0.0)
        )
    return delays


def access_timeline(
    dataset: ObservedDataset,
    unique_accesses: list[UniqueAccess],
) -> dict[str, list[tuple[float, str]]]:
    """Figure 4 series: (delay_days, account) points per outlet.

    The scatter makes the Russian-paste dormancy gap and the malware
    resale bursts visible as horizontal bands.
    """
    points: dict[str, list[tuple[float, str]]] = {}
    for access in unique_accesses:
        provenance = dataset.provenance.get(access.account_address)
        if provenance is None:
            continue
        delay_days = max(
            (access.t0 - provenance.leak_time) / days(1), 0.0
        )
        points.setdefault(provenance.group.outlet.value, []).append(
            (delay_days, access.account_address)
        )
    for series in points.values():
        series.sort()
    return points


def group_time_to_first_access(
    dataset: ObservedDataset,
    unique_accesses: list[UniqueAccess],
) -> dict[str, list[float]]:
    """Leak-to-access delays (days) keyed by fine-grained group name.

    Used to verify the Russian-paste subgroup stayed silent for over two
    months (Section 4.3).
    """
    delays: dict[str, list[float]] = {}
    for access in unique_accesses:
        provenance = dataset.provenance.get(access.account_address)
        if provenance is None:
            continue
        delay_days = (access.t0 - provenance.leak_time) / days(1)
        delays.setdefault(provenance.group.name, []).append(
            max(delay_days, 0.0)
        )
    return delays
