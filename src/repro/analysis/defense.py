"""Defender-side effectiveness analysis.

:func:`defense_report` turns the defense-action telemetry recorded by
:class:`~repro.defenses.engine.DefenseEngine` into the metrics the
defense docs reason about: how many attacker logins a forced reset
prevented, how long attackers dwelt in accounts before being cut off,
and how the taxonomy of observed accesses shifted relative to an
undefended baseline run.

All metrics come straight off the dataset's defense-action rows plus
the standard analysis pipeline, so the report works identically for
serial runs, merged shard runs, and datasets restored from JSON.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.analysis.dataset import AnalysisResults, analyze
from repro.analysis.taxonomy import TaxonomyLabel
from repro.core.records import ObservedDataset
from repro.sim.clock import days, hours

#: Defense-name column value the engine stamps on prevented-login rows
#: (they are attributed to the reset machinery, not one detector).
ENGINE_DEFENSE = "engine"


@dataclass(frozen=True)
class DefenseReport:
    """Effectiveness summary for one (possibly defended) run."""

    #: Accounts that recorded at least one defense action.
    defended_accounts: int
    #: Attacker login attempts rejected because a reset had landed.
    prevented_accesses: int
    #: Distinct attacker devices that were locked out at least once.
    prevented_devices: int
    #: Forced password resets applied.
    resets: int
    #: Accounts that received at least one reset.
    reset_accounts: int
    #: Re-leaks of the post-reset credential (reset_policy.releak_*).
    releaks: int
    #: defense name -> action -> row count, for every recorded action.
    action_counts: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Median days between an account's first observed attacker access
    #: and its first reset (``None`` when no reset account was ever
    #: accessed before its reset).
    median_dwell_days: float | None = None
    #: Per-account dwell samples backing the median, in days.
    dwell_days: tuple[float, ...] = ()
    #: Taxonomy label -> unique-access count for this run.
    taxonomy_totals: dict[TaxonomyLabel, int] = field(default_factory=dict)
    #: Same, for the no-defense baseline (``None`` without a baseline).
    baseline_totals: dict[TaxonomyLabel, int] | None = None
    #: Label -> (defended - baseline) unique-access delta.
    taxonomy_delta: dict[TaxonomyLabel, int] | None = None

    @property
    def has_defenses(self) -> bool:
        return self.defended_accounts > 0

    def to_dict(self) -> dict:
        """JSON-ready summary (labels keyed by their string values)."""
        payload = {
            "defended_accounts": self.defended_accounts,
            "prevented_accesses": self.prevented_accesses,
            "prevented_devices": self.prevented_devices,
            "resets": self.resets,
            "reset_accounts": self.reset_accounts,
            "releaks": self.releaks,
            "action_counts": {
                defense: dict(sorted(actions.items()))
                for defense, actions in sorted(self.action_counts.items())
            },
            "median_dwell_days": self.median_dwell_days,
            "taxonomy_totals": {
                label.value: count
                for label, count in sorted(
                    self.taxonomy_totals.items(), key=lambda kv: kv[0].value
                )
            },
        }
        if self.baseline_totals is not None:
            payload["baseline_totals"] = {
                label.value: count
                for label, count in sorted(
                    self.baseline_totals.items(),
                    key=lambda kv: kv[0].value,
                )
            }
        if self.taxonomy_delta is not None:
            payload["taxonomy_delta"] = {
                label.value: count
                for label, count in sorted(
                    self.taxonomy_delta.items(), key=lambda kv: kv[0].value
                )
            }
        return payload

    def describe(self) -> str:
        """Human-readable multi-line summary (CLI report section)."""
        lines = [
            f"defended accounts      {self.defended_accounts}",
            f"prevented accesses     {self.prevented_accesses}",
            f"prevented devices      {self.prevented_devices}",
            f"forced resets          {self.resets}"
            f" (on {self.reset_accounts} accounts)",
            f"re-leaks               {self.releaks}",
        ]
        if self.median_dwell_days is not None:
            lines.append(
                "median attacker dwell  "
                f"{self.median_dwell_days:.2f} days before cutoff"
            )
        for defense, actions in sorted(self.action_counts.items()):
            summary = ", ".join(
                f"{action}={count}"
                for action, count in sorted(actions.items())
            )
            lines.append(f"  {defense}: {summary}")
        if self.taxonomy_delta is not None:
            shift = ", ".join(
                f"{label.value}{count:+d}"
                for label, count in sorted(
                    self.taxonomy_delta.items(), key=lambda kv: kv[0].value
                )
            )
            lines.append(f"taxonomy shift         {shift}")
        return "\n".join(lines)


def _label_totals(
    source: ObservedDataset | AnalysisResults, scan_period: float
) -> dict[TaxonomyLabel, int]:
    if isinstance(source, AnalysisResults):
        return dict(source.label_totals)
    return dict(analyze(source, scan_period=scan_period).label_totals)


def defense_report(
    dataset: ObservedDataset,
    *,
    scan_period: float = hours(2),
    analysis: AnalysisResults | None = None,
    baseline: ObservedDataset | AnalysisResults | None = None,
) -> DefenseReport:
    """Summarise defense effectiveness for one run.

    Args:
        dataset: the (defended) run's observed dataset.
        scan_period: monitoring cadence the dataset was produced under;
            only used when ``analysis``/``baseline`` need classifying.
        analysis: pre-computed :func:`analyze` results for ``dataset``
            (avoids re-running the pipeline when the caller already has
            them, e.g. ``RunResult.analysis``).
        baseline: an undefended run of the same scenario — either its
            dataset or its analysis — enabling the taxonomy-delta
            columns.
    """
    action_counts: dict[str, dict[str, int]] = {}
    defended: set[str] = set()
    prevented = 0
    prevented_devices: set[str] = set()
    resets = 0
    releaks = 0
    first_reset: dict[str, float] = {}
    for row in dataset.defense_actions:
        defended.add(row.account_address)
        per_defense = action_counts.setdefault(row.defense, {})
        per_defense[row.action] = per_defense.get(row.action, 0) + 1
        if row.action == "prevented_login":
            prevented += 1
            prevented_devices.add(row.detail)
        elif row.action == "reset":
            resets += 1
            address = row.account_address
            if (
                address not in first_reset
                or row.timestamp < first_reset[address]
            ):
                first_reset[address] = row.timestamp
        elif row.action == "releak":
            releaks += 1

    if analysis is None:
        analysis = analyze(dataset, scan_period=scan_period)
    # Dwell time: for each reset account, first observed attacker
    # access to first reset.  Unique accesses survive infrastructure
    # cleaning, so the scraper's own logins never count as dwell.
    first_access: dict[str, float] = {}
    for access in analysis.unique_accesses:
        address = access.account_address
        if address not in first_access or access.t0 < first_access[address]:
            first_access[address] = access.t0
    dwell = sorted(
        (first_reset[address] - first_access[address]) / days(1.0)
        for address in first_reset
        if address in first_access
        and first_access[address] <= first_reset[address]
    )
    median_dwell = statistics.median(dwell) if dwell else None

    taxonomy_totals = dict(analysis.label_totals)
    baseline_totals = None
    taxonomy_delta = None
    if baseline is not None:
        baseline_totals = _label_totals(baseline, scan_period)
        labels = set(taxonomy_totals) | set(baseline_totals)
        taxonomy_delta = {
            label: taxonomy_totals.get(label, 0)
            - baseline_totals.get(label, 0)
            for label in labels
        }

    return DefenseReport(
        defended_accounts=len(defended),
        prevented_accesses=prevented,
        prevented_devices=len(prevented_devices),
        resets=resets,
        reset_accounts=len(first_reset),
        releaks=releaks,
        action_counts=action_counts,
        median_dwell_days=median_dwell,
        dwell_days=tuple(dwell),
        taxonomy_totals=taxonomy_totals,
        baseline_totals=baseline_totals,
        taxonomy_delta=taxonomy_delta,
    )


__all__ = ["ENGINE_DEFENSE", "DefenseReport", "defense_report"]
