"""Searched-word inference (Section 4.6, Table 2).

Builds the two TF-IDF documents from observed artifacts only:

* ``dR`` — the text of messages attackers read, taken from the
  body copies the monitoring script shipped with READ notifications
  (deduplicated per message);
* ``dA`` — the text of every email seeded into the honey accounts, as
  captured at provisioning time.

Preprocessing follows the paper: drop words under five characters,
header vocabulary, monitoring-signal tokens, and the honey email handles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tfidf import TfidfRow, TfidfTable, compute_tfidf_table
from repro.core.notifications import NotificationKind
from repro.core.records import ObservedDataset
from repro.corpus.text import prepare_document


@dataclass
class KeywordInference:
    """Outcome of the searched-words analysis."""

    table: TfidfTable
    read_message_count: int
    read_term_count: int
    all_term_count: int

    def top_searched(self, k: int = 10) -> list[TfidfRow]:
        return self.table.top_by_difference(k)

    def top_corpus(self, k: int = 10) -> list[TfidfRow]:
        return self.table.top_by_corpus_weight(k)


def _honey_handles(dataset: ObservedDataset) -> list[str]:
    """Email handle tokens excluded from the corpus, as in the paper."""
    handles: list[str] = []
    for address in dataset.provenance:
        local_part = address.split("@", 1)[0]
        handles.extend(part for part in local_part.split(".") if part)
    return handles


def _read_bodies(dataset: ObservedDataset) -> tuple[int, list[str]]:
    """(distinct read messages with content, their bodies in first-seen
    order) — the ``dR`` document's raw material.

    Columnar datasets scan the kind/account/message id columns directly
    (dedup keys are interned-id pairs, bijective with the string pairs);
    legacy datasets iterate records.
    """
    store = getattr(dataset, "notification_store", None)
    if store is not None:
        import numpy as np

        from repro.telemetry.spill import iter_column_chunks

        read_id = store.strings.id_of(NotificationKind.READ.value)
        seen_keys: set[tuple[int, int]] = set()
        texts: list[str] = []
        if read_id is not None:
            bodies = store.bodies
            account_ids = store.account_ids
            message_ids = store.message_ids
            # Chunked kind-id scan: READ rows are a sliver of the
            # stream, so only they pay the (possibly disk-backed)
            # body/account/message lookups.
            base = 0
            for kind_chunk in iter_column_chunks(store.kind_ids, np.int64):
                matches = np.nonzero(kind_chunk == read_id)[0]
                for index in (matches + base).tolist():
                    if not bodies[index]:
                        continue
                    key = (account_ids[index], message_ids[index])
                    if key in seen_keys:
                        continue
                    seen_keys.add(key)
                    texts.append(bodies[index])
                base += len(kind_chunk)
        return len(seen_keys), texts
    seen_messages: set[tuple[str, str]] = set()
    texts = []
    for notification in dataset.notifications:
        if notification.kind is not NotificationKind.READ:
            continue
        if not notification.body_copy:
            continue
        key = (notification.account_address, notification.message_id)
        if key in seen_messages:
            continue
        seen_messages.add(key)
        texts.append(notification.body_copy)
    return len(seen_messages), texts


def infer_searched_words(dataset: ObservedDataset) -> KeywordInference:
    """Run the full Table 2 analysis over an observed dataset."""
    read_message_count, read_texts = _read_bodies(dataset)
    all_texts: list[str] = []
    for texts in dataset.all_email_texts.values():
        all_texts.extend(texts)
    exclusions = _honey_handles(dataset)
    read_terms = prepare_document(read_texts, extra_exclusions=exclusions)
    all_terms = prepare_document(all_texts, extra_exclusions=exclusions)
    table = compute_tfidf_table(read_terms, all_terms)
    return KeywordInference(
        table=table,
        read_message_count=read_message_count,
        read_term_count=len(read_terms),
        all_term_count=len(all_terms),
    )
