"""repro — reproduction of "What Happens After You Are Pwnd" (IMC 2016).

A deterministic, seedable reimplementation of the paper's honey
webmail-account ecosystem: the instrumented accounts and monitoring
infrastructure (the paper's contribution, ``repro.core``), the webmail
provider, leak outlets, malware sandbox, and internet substrate it runs
on, a calibrated attacker population standing in for live criminal
traffic, and the full Section 4 analysis pipeline.

Quickstart::

    from repro import run_paper_experiment, analyze, overview

    result = run_paper_experiment(seed=2016)
    analysis = analyze(result.dataset, scan_period=result.config.scan_period)
    print(overview(analysis, result.blacklisted_ips))

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured numbers on every table and figure.
"""

from repro.analysis.dataset import AnalysisResults, analyze
from repro.analysis.report import (
    OverviewStats,
    SignificanceTests,
    format_table2,
    format_taxonomy_summary,
    overview,
    significance_tests,
)
from repro.core.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    run_paper_experiment,
)
from repro.core.groups import LeakPlan, OutletKind, paper_leak_plan

__version__ = "1.0.0"

__all__ = [
    "AnalysisResults",
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "LeakPlan",
    "OutletKind",
    "OverviewStats",
    "SignificanceTests",
    "__version__",
    "analyze",
    "format_table2",
    "format_taxonomy_summary",
    "overview",
    "paper_leak_plan",
    "run_paper_experiment",
    "significance_tests",
]
