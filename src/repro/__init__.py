"""repro — reproduction of "What Happens After You Are Pwnd" (IMC 2016).

A deterministic, seedable reimplementation of the paper's honey
webmail-account ecosystem: the instrumented accounts and monitoring
infrastructure (the paper's contribution, ``repro.core``), the webmail
provider, leak outlets, malware sandbox, and internet substrate it runs
on, a calibrated attacker population standing in for live criminal
traffic, and the full Section 4 analysis pipeline.

Quickstart — one run of a named scenario::

    from repro import scenarios

    run = scenarios.get("fast").run(seed=2016)   # a RunResult envelope
    stats = run.overview()                        # Section 4.1 numbers
    print(stats.unique_accesses, run.significance())
    run.analysis                                  # full Section 4 bundle,
                                                  # correct scan period,
                                                  # computed once, cached

Sweeps — many seeds and scenario variants, optionally on a process
pool, with cross-seed aggregates and pooled significance tests::

    from repro import BatchRunner, Scenario, scenarios

    batch = BatchRunner(jobs=4).run(
        scenarios.get("fast"), seeds=range(2016, 2024)
    )
    print(batch.aggregate().format())

    variant = (
        Scenario.builder()
        .named("half-size-no-incidents")
        .without_case_studies()
        .scale_accounts(0.5)
        .build()
    )
    batch = BatchRunner(jobs=4).run_matrix(
        [scenarios.get("fast"), variant], seeds=[1, 2, 3]
    )

The CLI mirrors the API: ``python -m repro run --scenario paste_only``,
``python -m repro sweep --seeds 2016..2023 --jobs 4``, ``python -m
repro scenarios``, ``python -m repro compare``.  ``run_paper_experiment``
remains as a thin shim over the ``fast``/``paper_default`` scenarios for
existing scripts.

See docs/API.md for the scenario/batch API, DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured numbers on every
table and figure.
"""

from repro.analysis.dataset import (
    AnalysisResults,
    analyze,
    analyze_experiment,
)
from repro.analysis.report import (
    OverviewStats,
    SignificanceTests,
    format_persona_report,
    format_table2,
    format_taxonomy_summary,
    overview,
    significance_tests,
)
from repro.api import (
    AggregateStats,
    BatchResult,
    BatchRunner,
    FailedRun,
    Persona,
    PersonaMix,
    RunResult,
    Scenario,
    ScenarioBuilder,
    personas,
    register_persona,
    run_scenario,
    scenarios,
)
from repro.core.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    run_paper_experiment,
)
from repro.core.groups import LeakPlan, OutletKind, paper_leak_plan
from repro.perf import PhaseTimer, capture_profile, peak_rss_kb
from repro.sweeps import JobSpec, ResultsStore, SweepManager
from repro.telemetry import (
    EventLog,
    JsonlSink,
    RowView,
    StreamingECDF,
    StringTable,
)

__version__ = "1.3.0"

__all__ = [
    "AggregateStats",
    "AnalysisResults",
    "BatchResult",
    "BatchRunner",
    "EventLog",
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "FailedRun",
    "JobSpec",
    "JsonlSink",
    "LeakPlan",
    "OutletKind",
    "OverviewStats",
    "Persona",
    "PersonaMix",
    "PhaseTimer",
    "ResultsStore",
    "RowView",
    "RunResult",
    "Scenario",
    "ScenarioBuilder",
    "SignificanceTests",
    "StreamingECDF",
    "StringTable",
    "SweepManager",
    "__version__",
    "analyze",
    "analyze_experiment",
    "capture_profile",
    "format_persona_report",
    "format_table2",
    "format_taxonomy_summary",
    "overview",
    "paper_leak_plan",
    "peak_rss_kb",
    "personas",
    "register_persona",
    "run_paper_experiment",
    "run_scenario",
    "scenarios",
    "significance_tests",
]
